// Command lisa is the CLI front end of the pipeline: it infers low-level
// semantics from failure tickets, asserts registered contracts over a
// codebase, and gates proposed changes.
//
// Usage:
//
//	lisa stats
//	    Print the study corpus statistics.
//
//	lisa list
//	    List the corpus cases and their tickets.
//
//	lisa infer -case <id> [-ticket <id>]
//	    Run semantics inference on a corpus ticket and print the recovered
//	    contracts with the reasoning trace.
//
//	lisa infer -buggy <file> -fixed <file> [-title <text>]
//	    Run inference on a patch given as two MiniJ source files.
//
//	lisa assert -case <id> [-version latest|head|<ticket-id>:buggy|<ticket-id>:fixed] [-tests]
//	    Register the rules inferred from every ticket of the case and
//	    assert them over the chosen version (default: head).
//
//	lisa assert -rules <case-id> -source <file> [-tests]
//	    Assert the case's rules over an arbitrary MiniJ source file.
//	    Assertions run on the parallel scheduler with a GOMAXPROCS-wide
//	    pool by default; -workers N overrides the width, and -workers 1
//	    selects the sequential engine loop (the byte-identity baseline).
//
//	lisa gate -case <id> -change <file> [-workers N] [-incremental]
//	    Run the CI gate for a proposed full-source change against the
//	    case's registered rules. Exits 1 when the change is blocked.
//	    -workers overrides the scheduler pool width (default GOMAXPROCS);
//	    -incremental first primes the scheduler's fingerprint cache on the
//	    current head, then gates the change so only impacted jobs
//	    re-execute (the summary reports the cache-hit split).
//
//	lisa assert|gate ... -shards N
//	    Partition the run's semantics across N child lisa processes by
//	    stable hash, all sharing one on-disk store (a temporary directory
//	    unless -store is given). Each child executes only its shard and
//	    writes results through; the parent then re-runs the full job set
//	    against the warmed store — every job served from the disk tier —
//	    and prints the usual report, byte-identical to a sequential run,
//	    plus a per-shard wall-clock ledger. Incompatible with -remote.
//
//	lisa author -spec <file> -source <file>
//	    Compile developer-authored semantics from a structured spec file
//	    (§5's explicit-encoding interface) and assert them over a source.
//
//	lisa export -case <id>
//	    Export the rules mined from a case in spec syntax, for developer
//	    review and editing.
//
//	lisa serve [-addr HOST:PORT] [-workers N] [-watch DIR]...
//	    Run the long-lived assertion daemon: an HTTP/JSON API over the
//	    corpus with process-lifetime snapshot, fingerprint, and solver
//	    caches, a polling file watcher that pre-warms changed sources, and
//	    a bounded request history for audit (/gate, /assert, /history,
//	    /stats, /watch, /healthz). SIGINT/SIGTERM drain gracefully.
//
//	lisa gate -remote URL ... / lisa assert -remote URL ...
//	    Run gate or assert through a daemon at URL instead of in-process.
//	    A cold client against a warm server skips the whole front end; the
//	    report and exit code are identical to the local run. Transient
//	    daemon failures (connection refused, timeout, 503-drain, overload
//	    shed) are retried -remote-retries times (default 3) under seeded
//	    jittered exponential backoff honoring the server's Retry-After;
//	    -remote-timeout bounds all attempts together (default 0 = none).
//	    If the daemon stays unreachable, keeps timing out, or is draining
//	    past the retry budget, the client fails over to in-process
//	    execution (disable with -remote-failover=false) — the printed
//	    report is byte-identical to a pure-local run, and a shared -store
//	    still applies. With failover off, the exit code names the failure:
//	    4 connection failed, 5 timed out, 6 server draining, 7 server
//	    overloaded (overload never fails over — the daemon is alive).
//	    -remote-token sets the client identity the daemon's per-token
//	    admission quotas key on.
//
//	lisa assert|gate|serve ... -store DIR
//	    Back the hot caches (program snapshots, solver verdicts, job
//	    fingerprints) with a crash-safe on-disk store at DIR, shared
//	    across processes: a cold invocation over a warm store replays
//	    prior results instead of recomputing them, and the report stays
//	    byte-identical to a store-less run. Two processes may share one
//	    store directory concurrently.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"lisa/internal/ci"
	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/corpus"
	"lisa/internal/experiments"
	"lisa/internal/infer"
	"lisa/internal/program"
	"lisa/internal/sched"
	"lisa/internal/server"
	"lisa/internal/shard"
	"lisa/internal/smt"
	"lisa/internal/store"
	"lisa/internal/ticket"
)

// attachStore opens (creating if needed) the on-disk cache store at dir and
// wires it behind private snapshot and solver caches on the engine, so a
// cold process starts warm from a previous run's results. The returned
// cleanup flushes the write-behind queue and releases the store lock; it is
// idempotent so the blocking-verdict paths can flush explicitly before
// os.Exit (which skips deferred calls) while the normal return still runs
// the deferred copy.
func attachStore(dir string, e *core.Engine) (*store.Store, func(), error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("open store %s: %w", dir, err)
	}
	snaps := program.NewCache(0)
	snaps.SetStore(st)
	e.Snapshots = snaps
	e.Solver = smt.NewQueryCache(0)
	e.Solver.SetStore(st)
	var once sync.Once
	return st, func() {
		once.Do(func() {
			st.Flush()
			st.Close()
		})
	}, nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "stats":
		err = runStats()
	case "list":
		err = runList()
	case "infer":
		err = runInfer(os.Args[2:])
	case "assert":
		err = runAssert(os.Args[2:])
	case "gate":
		err = runGate(os.Args[2:])
	case "author":
		err = runAuthor(os.Args[2:])
	case "export":
		err = runExport(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lisa: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lisa:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps a top-level failure to the process exit status. Remote
// transport failures carry distinct codes so scripts can branch on what
// actually went wrong instead of parsing error text: 4 connection failed,
// 5 timed out, 6 server draining, 7 server overloaded. Everything else —
// including remote HTTP-level rejections, where the request itself is
// wrong — stays the historical 1. (Blocked changes and violations exit 1
// before reaching here.)
func exitCode(err error) int {
	var re *server.RemoteError
	if errors.As(err, &re) {
		switch re.Kind {
		case server.RemoteConnect:
			return 4
		case server.RemoteTimeout:
			return 5
		case server.RemoteDrain:
			return 6
		case server.RemoteOverload:
			return 7
		}
	}
	return 1
}

// remotePolicy derives the -remote resilience posture from the flags:
// -remote-retries attempts beyond the first, the default backoff curve,
// an overall deadline from -remote-timeout, and — when the run carries a
// -run-timeout budget — a per-attempt deadline of that budget plus a
// second of transport slack (one attempt is one server-side run, which
// the daemon bounds with the same budget).
func remotePolicy(retries int, overall, runTimeout time.Duration) server.RetryPolicy {
	p := server.DefaultRetryPolicy()
	p.Retries = retries
	if runTimeout > 0 {
		p.AttemptTimeout = runTimeout + time.Second
	}
	p.OverallTimeout = overall
	return p
}

// failoverable reports whether a remote failure should fall back to
// in-process execution: failover is enabled and the daemon was
// unreachable, timed out, or draining. Overload does not fail over — the
// daemon is alive and asked us to back off — and HTTP-level failures mean
// the request itself is wrong, which local execution would only reproduce.
func failoverable(err error, enabled bool) bool {
	if err == nil || !enabled {
		return false
	}
	var re *server.RemoteError
	if !errors.As(err, &re) {
		return false
	}
	switch re.Kind {
	case server.RemoteConnect, server.RemoteTimeout, server.RemoteDrain:
		return true
	}
	return false
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lisa <stats|list|infer|assert|gate|author|export|serve> [flags]")
	fmt.Fprintln(os.Stderr, "run 'go doc lisa/cmd/lisa' for details")
}

func runAuthor(args []string) error {
	fs := flag.NewFlagSet("author", flag.ExitOnError)
	specPath := fs.String("spec", "", "path to the structured semantics spec")
	sourcePath := fs.String("source", "", "path to the MiniJ source to assert over")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" || *sourcePath == "" {
		return fmt.Errorf("need -spec and -source")
	}
	specText, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	sems, err := contract.ParseSpec(string(specText))
	if err != nil {
		return err
	}
	source, err := os.ReadFile(*sourcePath)
	if err != nil {
		return err
	}
	e := core.New()
	for _, sem := range sems {
		if err := e.Registry.Add(sem); err != nil {
			return err
		}
		fmt.Printf("registered %s\n", sem)
	}
	rep, err := e.Assert(string(source), nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nverdicts: %d verified, %d violations, %d unknown\n",
		rep.Counts.Verified, rep.Counts.Violations, rep.Counts.Unknown)
	for _, v := range rep.Violations() {
		fmt.Println("VIOLATION", v)
	}
	if rep.Counts.Violations > 0 {
		os.Exit(1)
	}
	return nil
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	caseID := fs.String("case", "", "corpus case id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cs := corpus.Load().Get(*caseID)
	if cs == nil {
		return fmt.Errorf("unknown case %q (try 'lisa list')", *caseID)
	}
	e := core.New()
	for _, tk := range cs.Tickets {
		if _, err := e.ProcessTicket(tk); err != nil {
			return err
		}
	}
	fmt.Print(contract.FormatSpec(e.Registry.All()))
	return nil
}

func runStats() error {
	c := corpus.Load()
	out, err := experiments.Run("study", c)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func runList() error {
	c := corpus.Load()
	for _, cs := range c.Cases {
		fmt.Printf("%-26s %-13s %s\n", cs.ID, cs.System, cs.Feature)
		for _, tk := range cs.Tickets {
			fmt.Printf("    %-10s %s\n", tk.ID, tk.Title)
		}
		if cs.Latest != "" {
			fmt.Printf("    %-10s (head carries unguarded paths)\n", "latest")
		}
	}
	return nil
}

func runInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	caseID := fs.String("case", "", "corpus case id")
	ticketID := fs.String("ticket", "", "ticket id within the case (default: first)")
	buggyPath := fs.String("buggy", "", "path to the pre-patch MiniJ source")
	fixedPath := fs.String("fixed", "", "path to the post-patch MiniJ source")
	title := fs.String("title", "user-supplied patch", "ticket title for file mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tk *ticket.Ticket
	switch {
	case *buggyPath != "" && *fixedPath != "":
		buggy, err := os.ReadFile(*buggyPath)
		if err != nil {
			return err
		}
		fixed, err := os.ReadFile(*fixedPath)
		if err != nil {
			return err
		}
		tk = &ticket.Ticket{
			ID: "USER-1", Title: *title,
			BuggySource: string(buggy), FixedSource: string(fixed),
		}
	case *caseID != "":
		cs := corpus.Load().Get(*caseID)
		if cs == nil {
			return fmt.Errorf("unknown case %q (try 'lisa list')", *caseID)
		}
		tk = cs.Tickets[0]
		if *ticketID != "" {
			tk = nil
			for _, cand := range cs.Tickets {
				if cand.ID == *ticketID {
					tk = cand
				}
			}
			if tk == nil {
				return fmt.Errorf("case %s has no ticket %q", *caseID, *ticketID)
			}
		}
	default:
		return fmt.Errorf("need -case or -buggy/-fixed")
	}

	pa := &infer.PatchAnalyzer{Generalize: true}
	res, err := pa.Infer(tk)
	if err != nil {
		return err
	}
	fmt.Printf("ticket %s: %s\n\nhigh-level semantics:\n  %s\n\nlow-level semantics:\n", tk.ID, tk.Title, res.HighLevel)
	for _, sem := range res.Semantics {
		fmt.Printf("  %s\n    %s\n", sem, sem.Description)
		cc := infer.CrossCheck(sem, tk)
		fmt.Printf("    cross-check: grounded=%v confirmed=%v (%s)\n", cc.Grounded, cc.Confirmed, cc.Reason)
	}
	fmt.Println("\nreasoning:")
	for _, r := range res.Reasoning {
		fmt.Println("  -", r)
	}
	return nil
}

func runAssert(args []string) error {
	fs := flag.NewFlagSet("assert", flag.ExitOnError)
	caseID := fs.String("case", "", "corpus case id (rules source and default target)")
	rulesID := fs.String("rules", "", "corpus case id to take rules from (with -source)")
	version := fs.String("version", "head", "target version: head, latest, or <ticket-id>:buggy|fixed")
	sourcePath := fs.String("source", "", "path to a MiniJ source file to assert over")
	withTests := fs.Bool("tests", false, "also replay similarity-selected tests")
	workers := fs.Int("workers", 0, "scheduler pool width; 0 = GOMAXPROCS (the default), 1 = the sequential engine loop")
	shards := fs.Int("shards", 1, "split the assertion across N child processes sharing one store; the parent then merges from the warmed store and prints the usual report")
	shardIndex := fs.Int("shard-index", -1, "internal: run as shard child N of -shards (set by the parent; executes only that shard's semantics and suppresses the report)")
	storeDir := fs.String("store", "", "back the snapshot, solver, and fingerprint caches with an on-disk store at this directory (created if missing)")
	deepVerify := fs.Int("deep-verify", 0, "with -store: deep-verify every Nth snapshot restore by re-parsing the source and comparing canons (0 = default sampling, 1 = every restore, i.e. the pre-v2 behavior)")
	remote := fs.String("remote", "", "assert through a running lisa serve daemon at this base URL instead of in-process")
	remoteRetries := fs.Int("remote-retries", server.DefaultRemoteRetries, "with -remote: retries after a transient daemon failure (connection refused, timeout, drain, overload)")
	remoteTimeout := fs.Duration("remote-timeout", 0, "with -remote: overall deadline across all attempts and backoff sleeps (0 = none)")
	remoteFailover := fs.Bool("remote-failover", true, "with -remote: fall back to in-process execution when the daemon stays unreachable, times out, or drains past the retry budget")
	remoteToken := fs.String("remote-token", "", "with -remote: client identity for the daemon's per-token admission quotas")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := *caseID
	if id == "" {
		id = *rulesID
	}
	if id == "" {
		return fmt.Errorf("need -case or -rules")
	}
	var shardResults []shard.Result
	var mergeStart time.Time
	cleanupShards := func() {}
	defer func() { cleanupShards() }()
	if *shards > 1 && *shardIndex < 0 {
		if *remote != "" {
			return fmt.Errorf("-shards is incompatible with -remote")
		}
		// Warm handoff: resolve the target up front and hand the children a
		// store that already holds its parsed snapshots — each child then
		// restores by binary-AST decode instead of a full parse.
		cs := corpus.Load().Get(id)
		if cs == nil {
			return fmt.Errorf("unknown case %q (try 'lisa list')", id)
		}
		target, terr := resolveAssertTarget(cs, *sourcePath, *version, id)
		if terr != nil {
			return terr
		}
		warm := []string{target}
		if *withTests {
			warm = append(warm, joinTests(target, cs.Tests))
		}
		results, dir, cleanup, err := spawnShards("assert", args, *shards, *storeDir, warm...)
		if err != nil {
			return err
		}
		cleanupShards = cleanup
		shardResults = results
		*storeDir = dir
		mergeStart = time.Now()
	}
	if *remote != "" {
		req := server.AssertRequest{Case: id, Version: *version, Tests: *withTests}
		if *sourcePath != "" {
			data, err := os.ReadFile(*sourcePath)
			if err != nil {
				return err
			}
			req.Source = string(data)
		}
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				req.Workers = *workers
			}
		})
		err := remoteAssert(*remote, req, remotePolicy(*remoteRetries, *remoteTimeout, 0), *remoteToken)
		if !failoverable(err, *remoteFailover) {
			return err
		}
		// Fall through to the local path below — the same code a store-less
		// (or -store-backed) local invocation runs, so the printed report is
		// byte-identical to one.
		fmt.Fprintf(os.Stderr, "lisa: %v; failing over to local execution\n", err)
	}
	cs := corpus.Load().Get(id)
	if cs == nil {
		return fmt.Errorf("unknown case %q (try 'lisa list')", id)
	}

	e := core.New()
	var st *store.Store
	flushStore := func() {}
	if *storeDir != "" {
		s, cleanup, err := attachStore(*storeDir, e)
		if err != nil {
			return err
		}
		defer cleanup()
		flushStore = cleanup
		st = s
		e.Snapshots.SetDeepVerifyEvery(*deepVerify)
	}
	for _, tk := range cs.Tickets {
		rep, err := e.ProcessTicket(tk)
		if err != nil {
			return fmt.Errorf("process %s: %w", tk.ID, err)
		}
		for _, sem := range rep.Registered {
			fmt.Printf("registered %s\n", sem)
		}
		for _, sem := range rep.AlreadyKnown {
			fmt.Printf("ticket %s re-derives known rule %s\n", tk.ID, sem.ID)
		}
	}

	target, err := resolveAssertTarget(cs, *sourcePath, *version, id)
	if err != nil {
		return err
	}

	var tests []ticket.TestCase
	if *withTests {
		tests = cs.Tests
	}
	var rep *core.AssertReport
	if *workers != 1 || st != nil || *shardIndex >= 0 {
		s := sched.New()
		s.Cache().SetStore(st)
		opts := sched.Options{Workers: *workers}
		if *shardIndex >= 0 {
			opts.ShardIndex = *shardIndex
			opts.ShardCount = *shards
		}
		var stats *sched.Stats
		rep, stats, err = s.Assert(e, target, tests, opts)
		if err != nil {
			return err
		}
		if *shardIndex >= 0 {
			// Child mode: this process only warms the shared store with its
			// shard's results. The parent's merge run owns the report and
			// the exit code, so print a one-line summary and succeed.
			flushStore()
			fmt.Printf("shard %d/%d: %d jobs (%d executed, %d cache hits), %d semantics elsewhere\n",
				*shardIndex, *shards, stats.Jobs, stats.Executed, stats.CacheHits, stats.ShardSkippedSemantics)
			return nil
		}
		fmt.Printf("\nscheduled %d jobs on %d workers (%d site, %d dynamic, %d structural)\n",
			stats.Jobs, stats.Workers, stats.SiteJobs, stats.DynamicJobs, stats.StructuralJobs)
		if stats.DiskHits > 0 {
			fmt.Printf("store: %d job(s) served from the disk tier\n", stats.DiskHits)
		}
		if stats.SnapshotRestores > 0 {
			fmt.Printf("snapshots: %d restored from the store (%d decoded, %d deep-verified)\n",
				stats.SnapshotRestores, stats.SnapshotRestoresDecoded, stats.SnapshotRestoresDeepVerified)
		}
		if shardResults != nil {
			fmt.Print(shard.Ledger(shardResults, time.Since(mergeStart)))
		}
	} else {
		rep, err = e.Assert(target, tests)
		if err != nil {
			return err
		}
	}
	fmt.Printf("\nverdicts: %d verified, %d violations, %d unknown, %d uncovered\n\n",
		rep.Counts.Verified, rep.Counts.Violations, rep.Counts.Unknown, rep.Counts.Uncovered)
	for _, sr := range rep.Semantics {
		for _, v := range sr.Structural {
			fmt.Printf("VIOLATION [%s] %s\n", sr.Semantic.ID, v)
		}
		for _, site := range sr.Sites {
			for _, p := range site.Paths {
				mark := "  "
				if p.Verdict == concolic.VerdictViolation {
					mark = "!!"
				}
				fmt.Printf("%s %-9s %s  cond={%s}", mark, p.Verdict, site.Site, p.Static.Cond)
				if len(p.CoveredBy) > 0 {
					fmt.Printf("  covered by %s", strings.Join(p.CoveredBy, ","))
				}
				fmt.Println()
			}
		}
		if !sr.SanityOK {
			fmt.Printf("WARN [%s] sanity check failed: no verified path anywhere\n", sr.Semantic.ID)
		}
	}
	if rep.Counts.Violations > 0 {
		flushStore()
		cleanupShards()
		os.Exit(1)
	}
	return nil
}

// resolveAssertTarget picks the system source an assert run targets:
// -source wins, then -version selects among the case's recorded versions.
func resolveAssertTarget(cs *ticket.Case, sourcePath, version, id string) (string, error) {
	switch {
	case sourcePath != "":
		data, err := os.ReadFile(sourcePath)
		if err != nil {
			return "", err
		}
		return string(data), nil
	case version == "head":
		return cs.Head(), nil
	case version == "latest":
		if cs.Latest == "" {
			return "", fmt.Errorf("case %s has no latest head", id)
		}
		return cs.Latest, nil
	}
	parts := strings.SplitN(version, ":", 2)
	if len(parts) != 2 {
		return "", fmt.Errorf("bad -version %q", version)
	}
	var target string
	for _, tk := range cs.Tickets {
		if tk.ID != parts[0] {
			continue
		}
		if parts[1] == "buggy" {
			target = tk.BuggySource
		} else {
			target = tk.FixedSource
		}
	}
	if target == "" {
		return "", fmt.Errorf("no version %q in case %s", version, id)
	}
	return target, nil
}

// joinTests concatenates the system source with the full test suite the
// way core.Engine.PrepareSnapshot does, so a prewarmed snapshot's content
// address matches what an asserting child will ask the store for.
func joinTests(src string, tests []ticket.TestCase) string {
	full := src
	for _, tc := range tests {
		full += "\n" + tc.Source
	}
	return full
}

func runGate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	caseID := fs.String("case", "", "corpus case id providing the registered rules")
	changePath := fs.String("change", "", "path to the proposed full MiniJ source")
	summary := fs.String("summary", "proposed change", "change summary for the gate log")
	workers := fs.Int("workers", 0, "scheduler pool width; 0 = GOMAXPROCS (the default), 1 = the sequential engine loop")
	shards := fs.Int("shards", 1, "split the gate's assertion across N child processes sharing one store; the parent then merges from the warmed store and prints the gate log")
	shardIndex := fs.Int("shard-index", -1, "internal: run as shard child N of -shards (set by the parent; executes only that shard's semantics and suppresses the gate log)")
	incremental := fs.Bool("incremental", false, "prime the fingerprint cache on the current head, then gate only what the change impacts")
	failClosed := fs.Bool("fail-closed", true, "block the change when any contract's assertion is INCONCLUSIVE (degraded by a deadline, budget, or contained crash)")
	failOpen := fs.Bool("fail-open", false, "downgrade INCONCLUSIVE outcomes to warnings and let the change pass; overrides -fail-closed")
	runTimeout := fs.Duration("run-timeout", 0, "wall-clock deadline for the whole assertion run (0 = none)")
	jobTimeout := fs.Duration("job-timeout", 0, "deadline per assertion job (0 = none)")
	solverNodes := fs.Int("solver-nodes", 0, "DPLL node ceiling per SMT query (0 = default)")
	stepBudget := fs.Int("step-budget", 0, "interpreter statement ceiling per test replay (0 = default)")
	storeDir := fs.String("store", "", "back the snapshot, solver, and fingerprint caches with an on-disk store at this directory (created if missing)")
	deepVerify := fs.Int("deep-verify", 0, "with -store: deep-verify every Nth snapshot restore by re-parsing the source and comparing canons (0 = default sampling, 1 = every restore, i.e. the pre-v2 behavior)")
	remote := fs.String("remote", "", "gate through a running lisa serve daemon at this base URL (e.g. http://127.0.0.1:7333) instead of in-process")
	remoteRetries := fs.Int("remote-retries", server.DefaultRemoteRetries, "with -remote: retries after a transient daemon failure (connection refused, timeout, drain, overload)")
	remoteTimeout := fs.Duration("remote-timeout", 0, "with -remote: overall deadline across all attempts and backoff sleeps (0 = none)")
	remoteFailover := fs.Bool("remote-failover", true, "with -remote: fall back to in-process execution when the daemon stays unreachable, times out, or drains past the retry budget")
	remoteToken := fs.String("remote-token", "", "with -remote: client identity for the daemon's per-token admission quotas")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *caseID == "" || *changePath == "" {
		return fmt.Errorf("need -case and -change")
	}
	data, err := os.ReadFile(*changePath)
	if err != nil {
		return err
	}
	var shardResults []shard.Result
	var mergeStart time.Time
	cleanupShards := func() {}
	defer func() { cleanupShards() }()
	if *shards > 1 && *shardIndex < 0 {
		if *remote != "" {
			return fmt.Errorf("-shards is incompatible with -remote")
		}
		// Warm handoff: every version a gate child will load — head and
		// proposed change, bare and with the test suite appended — goes
		// into the shared store parsed, so children restore parse-free.
		cs := corpus.Load().Get(*caseID)
		if cs == nil {
			return fmt.Errorf("unknown case %q", *caseID)
		}
		warm := []string{
			cs.Head(), joinTests(cs.Head(), cs.Tests),
			string(data), joinTests(string(data), cs.Tests),
		}
		results, dir, cleanup, serr := spawnShards("gate", args, *shards, *storeDir, warm...)
		if serr != nil {
			return serr
		}
		cleanupShards = cleanup
		shardResults = results
		*storeDir = dir
		mergeStart = time.Now()
	}
	if *remote != "" {
		req := server.GateRequest{
			Case:        *caseID,
			Change:      string(data),
			Summary:     *summary,
			Incremental: *incremental,
			FailOpen:    *failOpen || !*failClosed,
		}
		// The daemon picks its own pool width unless -workers was given
		// explicitly (both sides default to GOMAXPROCS, but the daemon's
		// operator may have configured a different width).
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "workers":
				req.Workers = *workers
			case "run-timeout", "job-timeout", "solver-nodes", "step-budget":
				req.Budget = &server.BudgetSpec{
					RunTimeoutMS: runTimeout.Milliseconds(),
					JobTimeoutMS: jobTimeout.Milliseconds(),
					SolverNodes:  *solverNodes,
					StepBudget:   *stepBudget,
				}
			}
		})
		err := remoteGate(*remote, req, remotePolicy(*remoteRetries, *remoteTimeout, *runTimeout), *remoteToken)
		if !failoverable(err, *remoteFailover) {
			return err
		}
		// Fall through to the local gate below — the same code a pure-local
		// invocation runs, so the printed gate log is byte-identical to one,
		// and a shared -store still applies.
		fmt.Fprintf(os.Stderr, "lisa: %v; failing over to local execution\n", err)
	}
	cs := corpus.Load().Get(*caseID)
	if cs == nil {
		return fmt.Errorf("unknown case %q", *caseID)
	}
	e := core.New()
	e.Budget = core.Budget{
		RunTimeout:  *runTimeout,
		JobTimeout:  *jobTimeout,
		SolverNodes: *solverNodes,
		StepBudget:  *stepBudget,
	}
	var st *store.Store
	flushStore := func() {}
	if *storeDir != "" {
		s, cleanup, err := attachStore(*storeDir, e)
		if err != nil {
			return err
		}
		defer cleanup()
		flushStore = cleanup
		st = s
		e.Snapshots.SetDeepVerifyEvery(*deepVerify)
	}
	for _, tk := range cs.Tickets {
		if _, err := e.ProcessTicket(tk); err != nil {
			return err
		}
	}
	opts := ci.GateOptions{Workers: *workers, Incremental: *incremental, FailOpen: *failOpen || !*failClosed}
	if *shardIndex >= 0 {
		opts.ShardIndex = *shardIndex
		opts.ShardCount = *shards
	}
	if *workers != 1 || *incremental || st != nil || *shardIndex >= 0 {
		opts.Scheduler = sched.New()
		opts.Scheduler.Cache().SetStore(st)
	}
	if *incremental && opts.Scheduler != nil {
		// Warm the cache on the current head so the gate re-executes only
		// the jobs the change impacts.
		if _, _, err := opts.Scheduler.Assert(e, cs.Head(), cs.Tests, sched.Options{
			Workers:    *workers,
			ShardIndex: opts.ShardIndex,
			ShardCount: opts.ShardCount,
		}); err != nil {
			return fmt.Errorf("priming cache on head: %w", err)
		}
	}
	res, err := ci.GateWith(e, ci.Change{
		Summary:   *summary,
		OldSource: cs.Head(),
		NewSource: string(data),
	}, cs.Tests, opts)
	if err != nil {
		return err
	}
	if *shardIndex >= 0 {
		// Child mode: the point was warming the shared store; the parent's
		// merge gate owns the log and the exit code.
		flushStore()
		fmt.Printf("shard %d/%d: gate pass=%v (report suppressed; parent merges)\n", *shardIndex, *shards, res.Pass)
		return nil
	}
	if shardResults != nil {
		fmt.Print(shard.Ledger(shardResults, time.Since(mergeStart)))
	}
	fmt.Print(res.Summary())
	if !res.Pass {
		flushStore()
		cleanupShards()
		os.Exit(1)
	}
	return nil
}
