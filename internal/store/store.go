// Package store is the crash-safe on-disk tier under the in-memory
// caches: an append-only log with an in-memory index, content-addressed
// by namespace + key (the callers' sha256 fingerprints and hashes).
//
// Layout: one file, store.log, holding CRC-framed records; a sidecar
// store.lock carries the advisory flock so the log file itself can be
// atomically replaced during compaction. Every record is
//
//	u32 crc | u8 version | u32 keyLen | u32 valLen | key | value
//
// with the crc (IEEE CRC-32) covering everything after itself. Writers
// append whole records under the exclusive lock, so a reader holding the
// shared lock never observes a partial record — except after a crash,
// which leaves a torn tail that Open (and the next writer) truncates at
// the first frame that fails to parse. The last record for a key wins;
// compaction rewrites the live set into a temp file and renames it over
// the log once the dead-byte ratio passes a threshold, and other
// processes detect the swap by comparing inodes and reopen.
//
// Puts are write-behind: they enqueue onto a bounded channel drained by a
// single writer goroutine, so cache hit paths never block on disk; Flush
// drains the queue (tests, process exit) and surfaces the first background
// append failure since the previous barrier — a failed write-behind append
// is additionally counted (per store and per namespace), reported to
// stderr once, and visible in Stats, so silent persistence loss cannot
// hide. While a faultinject plan is armed, Put is a no-op — results
// computed under injection must never poison the store — unless the plan
// is store-scoped (Plan.ScopeStore): then the computation above the store
// is clean, the injected faults live in the store itself, and the write
// path must stay live so the store.write / store.flush / store.compact
// points (including process-kill Crash rules, the crash-recovery
// campaign's tool) can fire on real appends. Get stays active while armed
// either way, so the store.read Corrupt point can exercise the CRC check:
// a corrupted read is counted and served as a miss, never as data.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"lisa/internal/faultinject"
)

const (
	logName  = "store.log"
	lockName = "store.lock"

	recordVersion = 1
	headerSize    = 4 + 1 + 4 + 4 // crc + version + keyLen + valLen

	// maxKeyLen / maxValLen bound a single frame; anything larger in the
	// length fields is treated as a torn/corrupt tail, not an allocation.
	maxKeyLen = 1 << 12
	maxValLen = 1 << 26

	// nsSep joins namespace and key into the composite index key. Callers
	// use hex digests and dotted namespace constants, so NUL never collides.
	nsSep = "\x00"

	// compactMinDead is the floor of reclaimable bytes before compaction is
	// considered; past it, compaction runs when dead bytes exceed live.
	compactMinDead = 1 << 20

	// writeQueueCap bounds the write-behind queue. A full queue makes Put
	// block (backpressure) rather than drop, so a Flush sees everything.
	writeQueueCap = 1024
)

// Faultinject hook points in the store. Read is consulted on every disk
// read; a Corrupt rule flips a byte in the frame before the CRC check,
// which must surface as a detected miss, never as data. Write fires per
// frame append (Corrupt: the frame lands on disk with a flipped byte;
// Budget: the append "fails" like a full disk and is counted as a write
// error; Crash: half the frame reaches the disk and the process dies —
// the torn tail the next Open must truncate). Flush fires before the
// batch fsync (Budget: the sync "fails", counted; Crash: the process dies
// with the batch written but not synced). Compact fires twice per
// compaction — on entry and again after the temp log is written, before
// the rename (Budget on entry aborts the compaction; Crash kills the
// process at whichever visit the rule's skip count selects, leaving
// either an untouched log or an orphaned store.log.tmp).
const (
	FaultPointRead    = "store.read"
	FaultPointWrite   = "store.write"
	FaultPointFlush   = "store.flush"
	FaultPointCompact = "store.compact"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// indexEntry locates the live record for a composite key.
type indexEntry struct {
	off  int64 // frame start
	size int64 // whole frame length
}

// pendingPut is one queued write-behind entry.
type pendingPut struct {
	key   string // composite ns\x00key
	val   []byte
	flush chan error // non-nil: a Flush barrier, not a write
}

// Store is an on-disk content-addressed KV log shared by the snapshot,
// fingerprint, and solver caches, safe for concurrent use by multiple
// goroutines and multiple processes.
type Store struct {
	dir      string
	path     string
	lockFile *os.File

	mu      sync.Mutex
	f       *os.File
	ident   os.FileInfo // identity of the open log, to detect compaction swaps
	index   map[string]indexEntry
	scanned int64 // log offset up to which the index is current
	live    int64 // bytes held by live frames
	dead    int64 // bytes held by superseded frames

	// lastVal carries the value out of readFrame(wantVal=true); guarded
	// by s.mu like the rest of the read path.
	lastVal []byte

	// qmu guards queue sends against Close closing the channel: senders
	// hold it shared, Close exclusively.
	qmu    sync.RWMutex
	queue  chan pendingPut
	wg     sync.WaitGroup
	closed atomic.Bool

	// compactMin is the dead-byte floor before compaction; tests lower it.
	compactMin int64

	gets, hits, misses       atomic.Uint64
	puts, writes, armedSkips atomic.Uint64
	corruptions, recoveries  atomic.Uint64
	compactions, rescans     atomic.Uint64
	writeErrors              atomic.Uint64

	// errMu guards the per-namespace write-error ledger and the last error
	// text; errLogOnce limits the stderr report to the first failure.
	errMu      sync.Mutex
	nsErrs     map[string]uint64
	lastErr    string
	errLogOnce sync.Once
}

// Stats is a snapshot of one store's counters, exposed through /stats and
// lisabench.
type Stats struct {
	Records     int    `json:"records"`
	LiveBytes   int64  `json:"live_bytes"`
	DeadBytes   int64  `json:"dead_bytes"`
	Gets        uint64 `json:"gets"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Writes      uint64 `json:"writes"`
	ArmedSkips  uint64 `json:"armed_skips"`
	Corruptions uint64 `json:"corruptions"`
	Recoveries  uint64 `json:"recoveries"`
	Compactions uint64 `json:"compactions"`
	Rescans     uint64 `json:"rescans"`
	// WriteErrors counts puts whose background append failed — persistence
	// that was silently lost before this counter existed. LastWriteError
	// carries the most recent failure's text for /stats readers.
	WriteErrors    uint64 `json:"write_errors"`
	LastWriteError string `json:"last_write_error,omitempty"`
}

// TierStats is the unified two-tier counter block every CacheBackend
// reports: the in-memory LRU in front, the shared disk store behind it.
type TierStats struct {
	Cache      string `json:"cache"`
	MemHits    uint64 `json:"mem_hits"`
	MemMisses  uint64 `json:"mem_misses"`
	DiskHits   uint64 `json:"disk_hits"`
	DiskMisses uint64 `json:"disk_misses"`
	DiskWrites uint64 `json:"disk_writes"`
	// DiskWriteErrors counts this cache's puts whose background append
	// failed in the store — entries the next cold process will have to
	// recompute even though this one paid for them.
	DiskWriteErrors uint64 `json:"disk_write_errors,omitempty"`
	// DiskHitsDecoded and DiskHitsVerified split DiskHits by restore
	// path for caches that distinguish them (the snapshot cache since
	// snap.v2): decoded restores adopt a checksummed binary artifact
	// after a digest check, deep-verified restores additionally re-derive
	// the artifact from source and compare (the legacy full-trust-nothing
	// path, now sampled). Zero for caches without the split.
	DiskHitsDecoded  uint64 `json:"disk_hits_decoded,omitempty"`
	DiskHitsVerified uint64 `json:"disk_hits_verified,omitempty"`
}

// CacheBackend is the common two-tier shape of the sched fingerprint
// cache, the program snapshot cache, and the smt query cache: a bounded
// in-memory tier that can be backed by a shared on-disk store. SetStore
// with nil detaches the disk tier (the default).
type CacheBackend interface {
	CacheName() string
	SetStore(*Store)
	TierStats() TierStats
}

// Open opens (creating if needed) the store rooted at dir. A torn tail
// left by a crashed writer is truncated away before the index is built.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A writer that died mid-compaction leaves an orphaned temp log; it
	// was never renamed into place, so it holds nothing the real log does
	// not. Clear it away rather than let a later compaction inherit it.
	os.Remove(filepath.Join(dir, logName+".tmp"))
	s := &Store{
		dir:        dir,
		path:       filepath.Join(dir, logName),
		lockFile:   lock,
		index:      map[string]indexEntry{},
		queue:      make(chan pendingPut, writeQueueCap),
		compactMin: compactMinDead,
	}
	if err := s.openLogLocked(true); err != nil {
		lock.Close()
		return nil, err
	}
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// openLogLocked (re)opens the log file and rebuilds the index by scanning
// it. With repair set, a torn tail is truncated under the exclusive lock.
// Caller holds s.mu (or is the constructor).
func (s *Store) openLogLocked(repair bool) error {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	ident, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.f = f
	s.ident = ident
	s.index = map[string]indexEntry{}
	s.scanned, s.live, s.dead = 0, 0, 0
	if err := s.scanTailLocked(); err != nil {
		return err
	}
	if repair {
		return s.repairTailLocked()
	}
	return nil
}

// scanTailLocked indexes frames from s.scanned to the end of the log,
// stopping at the first frame that fails to parse (a torn or corrupt
// tail). Caller holds s.mu.
func (s *Store) scanTailLocked() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	for s.scanned < size {
		key, frame, ok, err := s.readFrame(s.scanned, size, false)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if prev, dup := s.index[key]; dup {
			s.dead += prev.size
			s.live -= prev.size
		}
		s.index[key] = indexEntry{off: s.scanned, size: frame}
		s.live += frame
		s.scanned += frame
	}
	return nil
}

// repairTailLocked truncates a torn tail (scanned < size) under the
// exclusive lock. Safe at open and before appends: only a crashed writer
// leaves one, and live writers are excluded by the lock. Caller holds s.mu.
func (s *Store) repairTailLocked() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.scanned >= fi.Size() {
		return nil
	}
	if err := s.flock(syscall.LOCK_EX); err != nil {
		return err
	}
	defer s.funlock()
	// Another process may have repaired (or compacted) while we waited.
	if err := s.reopenIfSwappedLocked(); err != nil {
		return err
	}
	if err := s.scanTailLocked(); err != nil {
		return err
	}
	fi, err = s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.scanned < fi.Size() {
		if err := s.f.Truncate(s.scanned); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
		s.recoveries.Add(1)
	}
	return nil
}

// readFrame parses one frame at off (file size limit hi). It returns the
// composite key, the frame length, and ok=false for a torn/corrupt frame.
// With wantVal set it also returns the value via s.lastVal. Caller holds
// s.mu.
func (s *Store) readFrame(off, hi int64, wantVal bool) (key string, frame int64, ok bool, err error) {
	if off+headerSize > hi {
		return "", 0, false, nil
	}
	var hdr [headerSize]byte
	if _, err := s.f.ReadAt(hdr[:], off); err != nil {
		return "", 0, false, fmt.Errorf("store: read: %w", err)
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	version := hdr[4]
	keyLen := int64(binary.LittleEndian.Uint32(hdr[5:9]))
	valLen := int64(binary.LittleEndian.Uint32(hdr[9:13]))
	if version != recordVersion || keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen {
		return "", 0, false, nil
	}
	frame = headerSize + keyLen + valLen
	if off+frame > hi {
		return "", 0, false, nil
	}
	body := make([]byte, 1+8+keyLen+valLen)
	copy(body, hdr[4:])
	if _, err := s.f.ReadAt(body[9:], off+headerSize); err != nil {
		return "", 0, false, fmt.Errorf("store: read: %w", err)
	}
	if wantVal && faultinject.Armed() {
		if kind, hit := faultinject.At(FaultPointRead); hit && kind == faultinject.Corrupt {
			body[len(body)-1] ^= 0xff
		}
	}
	if crc32.ChecksumIEEE(body) != crc {
		return "", 0, false, nil
	}
	key = string(body[9 : 9+keyLen])
	if wantVal {
		s.lastVal = body[9+keyLen:]
	}
	return key, frame, true, nil
}

// Get returns the stored value for (ns, key), or ok=false on a miss. A
// frame that fails its CRC (disk corruption or an injected store.read
// fault) counts as a corruption and is served as a miss — the caller
// recomputes. When the key is not in the index the log tail is re-scanned
// under the shared lock, so appends by other processes become visible.
func (s *Store) Get(ns, key string) ([]byte, bool) {
	if s.closed.Load() {
		return nil, false
	}
	s.gets.Add(1)
	ck := ns + nsSep + key
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.index[ck]
	if !ok {
		// Maybe another process appended (or compacted) since we scanned.
		if err := s.refreshLocked(); err != nil {
			s.misses.Add(1)
			return nil, false
		}
		if ent, ok = s.index[ck]; !ok {
			s.misses.Add(1)
			return nil, false
		}
	}
	_, _, frameOK, err := s.readFrame(ent.off, ent.off+ent.size, true)
	if err != nil || !frameOK {
		if err == nil {
			s.corruptions.Add(1)
		}
		s.misses.Add(1)
		return nil, false
	}
	val := s.lastVal
	s.lastVal = nil
	s.hits.Add(1)
	return val, true
}

// refreshLocked makes the index current with the on-disk log under the
// shared lock: it reopens after a compaction swap and scans any appended
// tail. Caller holds s.mu.
func (s *Store) refreshLocked() error {
	if err := s.flock(syscall.LOCK_SH); err != nil {
		return err
	}
	defer s.funlock()
	if err := s.reopenIfSwappedLocked(); err != nil {
		return err
	}
	s.rescans.Add(1)
	return s.scanTailLocked()
}

// reopenIfSwappedLocked reopens the log when the path no longer names the
// file we have open (another process compacted). Caller holds s.mu and
// the flock.
func (s *Store) reopenIfSwappedLocked() error {
	fi, err := os.Stat(s.path)
	if err != nil || !os.SameFile(fi, s.ident) {
		return s.openLogLocked(false)
	}
	return nil
}

// Put schedules (ns, key) → val for write-behind append. The value is
// copied. While a faultinject plan is armed the write is dropped — results
// computed under injection must never reach the disk tier — unless the
// plan is store-scoped (the chaos campaign injecting faults into the store
// itself, on cleanly computed values; see the package comment).
func (s *Store) Put(ns, key string, val []byte) {
	if s.closed.Load() {
		return
	}
	if faultinject.Armed() && !faultinject.StoreScoped() {
		s.armedSkips.Add(1)
		return
	}
	if len(ns)+len(key)+1 > maxKeyLen || len(val) > maxValLen {
		return
	}
	p := pendingPut{key: ns + nsSep + key, val: append([]byte(nil), val...)}
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed.Load() {
		return
	}
	s.puts.Add(1)
	s.queue <- p
}

// Flush blocks until every Put issued before the call has been appended
// and synced, and returns the first background append failure since the
// previous barrier (nil when everything landed). A failed write-behind
// append is thereby no longer silent: the caller that wants durability
// sees the error, and the counters (Stats.WriteErrors, per-namespace via
// NamespaceWriteErrors) record it either way.
func (s *Store) Flush() error {
	if s.closed.Load() {
		return ErrClosed
	}
	done := make(chan error, 1)
	s.qmu.RLock()
	if s.closed.Load() {
		s.qmu.RUnlock()
		return ErrClosed
	}
	s.queue <- pendingPut{flush: done}
	s.qmu.RUnlock()
	return <-done
}

// Close drains the write-behind queue and closes the store. Further
// operations return misses / ErrClosed.
func (s *Store) Close() error {
	s.qmu.Lock()
	if s.closed.Swap(true) {
		s.qmu.Unlock()
		return nil
	}
	close(s.queue)
	s.qmu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.f != nil {
		err = s.f.Close()
		s.f = nil
	}
	if s.lockFile != nil {
		s.lockFile.Close()
		s.lockFile = nil
	}
	return err
}

// Dir returns the directory the store lives in.
func (s *Store) Dir() string { return s.dir }

// writer is the single write-behind goroutine: it batches whatever is
// queued, appends the batch under one exclusive lock + sync, and acks
// flush barriers once the queue ahead of them has landed — carrying the
// first append failure since the previous barrier to whoever is waiting.
func (s *Store) writer() {
	defer s.wg.Done()
	var pendingErr error
	for p := range s.queue {
		batch := make([]pendingPut, 0, 16)
		var flushes []chan error
		if p.flush != nil {
			flushes = append(flushes, p.flush)
		} else {
			batch = append(batch, p)
		}
	drain:
		for {
			select {
			case q, ok := <-s.queue:
				if !ok {
					break drain
				}
				if q.flush != nil {
					flushes = append(flushes, q.flush)
				} else {
					batch = append(batch, q)
				}
			default:
				break drain
			}
		}
		if len(batch) > 0 {
			if err := s.appendBatch(batch); err != nil && pendingErr == nil {
				pendingErr = err
			}
		}
		for _, ch := range flushes {
			ch <- pendingErr
		}
		if len(flushes) > 0 {
			pendingErr = nil
		}
	}
}

// noteWriteError records one put whose background append failed: the
// store-wide and per-namespace counters grow, the error text is kept for
// Stats, and the first failure in the store's lifetime is reported to
// stderr (once — a dying disk would otherwise flood the log).
func (s *Store) noteWriteError(key string, err error) {
	s.writeErrors.Add(1)
	ns := key
	if i := strings.Index(key, nsSep); i >= 0 {
		ns = key[:i]
	}
	s.errMu.Lock()
	if s.nsErrs == nil {
		s.nsErrs = map[string]uint64{}
	}
	s.nsErrs[ns]++
	s.lastErr = err.Error()
	s.errMu.Unlock()
	s.errLogOnce.Do(func() {
		fmt.Fprintf(os.Stderr, "store: background append failed (further failures counted, not logged): %v\n", err)
	})
}

// NamespaceWriteErrors returns how many failed background appends hit the
// given namespaces — the per-cache slice of Stats.WriteErrors, surfaced
// through each cache backend's TierStats.
func (s *Store) NamespaceWriteErrors(namespaces ...string) uint64 {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	var n uint64
	for _, ns := range namespaces {
		n += s.nsErrs[ns]
	}
	return n
}

// appendBatch writes a batch of frames under one exclusive lock, syncs,
// and compacts if the dead ratio warrants it. Every put the batch loses —
// to a real I/O error or an injected store.write/store.flush fault — is
// counted via noteWriteError, and the first error is returned so the next
// Flush barrier can surface it.
func (s *Store) appendBatch(batch []pendingPut) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fail := func(from int, err error) error {
		for _, p := range batch[from:] {
			s.noteWriteError(p.key, err)
		}
		return err
	}
	if s.f == nil {
		return fail(0, ErrClosed)
	}
	if err := s.flock(syscall.LOCK_EX); err != nil {
		return fail(0, err)
	}
	defer s.funlock()
	if err := s.reopenIfSwappedLocked(); err != nil {
		return fail(0, err)
	}
	if err := s.scanTailLocked(); err != nil {
		return fail(0, err)
	}
	// A torn tail (crashed writer) must go before we append after it.
	fi, err := s.f.Stat()
	if err != nil {
		return fail(0, fmt.Errorf("store: %w", err))
	}
	if s.scanned < fi.Size() {
		if err := s.f.Truncate(s.scanned); err != nil {
			return fail(0, fmt.Errorf("store: truncate torn tail: %w", err))
		}
		s.recoveries.Add(1)
	}
	var firstErr error
	for i, p := range batch {
		if prev, ok := s.index[p.key]; ok {
			if same, _ := s.frameEqual(prev, p.val); same {
				continue // identical live record already on disk
			}
		}
		frame := encodeFrame(p.key, p.val)
		if faultinject.Armed() {
			if kind, hit := faultinject.At(FaultPointWrite); hit {
				switch kind {
				case faultinject.Crash:
					// A writer dying mid-append: half the frame reaches
					// the disk, then the process is gone. The torn tail
					// is exactly what repairTailLocked exists for.
					s.f.WriteAt(frame[:len(frame)/2], s.scanned)
					s.f.Sync()
					faultinject.CrashNow(FaultPointWrite)
				case faultinject.Corrupt:
					// The frame lands whole but a bit rotted on the way:
					// its CRC no longer matches, so every future read
					// must detect it and serve a miss, never the data.
					frame[len(frame)-1] ^= 0xff
				case faultinject.Budget:
					// The append fails like a full disk: the put is lost
					// and must be counted, not silently dropped.
					err := fmt.Errorf("store: injected write failure at %s", FaultPointWrite)
					s.noteWriteError(p.key, err)
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
			}
		}
		if _, err := s.f.WriteAt(frame, s.scanned); err != nil {
			return fail(i, fmt.Errorf("store: append: %w", err))
		}
		if prev, ok := s.index[p.key]; ok {
			s.dead += prev.size
			s.live -= prev.size
		}
		s.index[p.key] = indexEntry{off: s.scanned, size: int64(len(frame))}
		s.live += int64(len(frame))
		s.scanned += int64(len(frame))
		s.writes.Add(1)
	}
	if faultinject.Armed() {
		if kind, hit := faultinject.At(FaultPointFlush); hit {
			switch kind {
			case faultinject.Crash:
				// The process dies with the batch written but not synced
				// — whatever the OS already persisted is what recovery
				// gets to work with.
				faultinject.CrashNow(FaultPointFlush)
			case faultinject.Budget:
				err := fmt.Errorf("store: injected sync failure at %s", FaultPointFlush)
				for _, p := range batch {
					s.noteWriteError(p.key, err)
				}
				if firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	if err := s.f.Sync(); err != nil {
		return fail(0, fmt.Errorf("store: sync: %w", err))
	}
	if s.dead > s.compactMin && s.dead > s.live {
		s.compactLocked()
	}
	return firstErr
}

// frameEqual reports whether the live frame at ent already stores val.
func (s *Store) frameEqual(ent indexEntry, val []byte) (bool, error) {
	_, _, ok, err := s.readFrame(ent.off, ent.off+ent.size, true)
	if err != nil || !ok {
		s.lastVal = nil
		return false, err
	}
	cur := s.lastVal
	s.lastVal = nil
	if len(cur) != len(val) {
		return false, nil
	}
	for i := range cur {
		if cur[i] != val[i] {
			return false, nil
		}
	}
	return true, nil
}

// compactLocked rewrites the live record set into a temp file and renames
// it over the log. Caller holds s.mu and the exclusive flock; other
// processes notice the inode change on their next locked operation and
// reopen.
func (s *Store) compactLocked() {
	if faultinject.Armed() {
		if kind, hit := faultinject.At(FaultPointCompact); hit {
			switch kind {
			case faultinject.Crash:
				// Death before the rewrite starts (first firing visit) or
				// after the temp file is fully written (use SetAfter to
				// select the second visit): either way the original log is
				// still the one on disk, so recovery must serve it intact
				// and Open must sweep any orphan temp file.
				faultinject.CrashNow(FaultPointCompact)
			case faultinject.Budget:
				// Compaction aborted — e.g. no space for the temp file.
				// The log keeps its dead weight; correctness is unchanged.
				return
			}
		}
	}
	tmpPath := s.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	// Preserve log order of the live set so a rebuilt index is identical.
	type liveRec struct {
		key string
		ent indexEntry
	}
	recs := make([]liveRec, 0, len(s.index))
	for k, ent := range s.index {
		recs = append(recs, liveRec{k, ent})
	}
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].ent.off < recs[j-1].ent.off; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	var off int64
	newIndex := make(map[string]indexEntry, len(recs))
	for _, r := range recs {
		buf := make([]byte, r.ent.size)
		if _, err := s.f.ReadAt(buf, r.ent.off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return
		}
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return
		}
		newIndex[r.key] = indexEntry{off: off, size: r.ent.size}
		off += r.ent.size
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return
	}
	if faultinject.Armed() {
		// Second consult of the same point: a SetAfter(point, Crash, 1)
		// rule sails past the entry check above and dies here — temp file
		// complete and synced, rename not yet issued. Recovery must keep
		// serving the original log and remove the orphan.
		if kind, hit := faultinject.At(FaultPointCompact); hit && kind == faultinject.Crash {
			faultinject.CrashNow(FaultPointCompact)
		}
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return
	}
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return
	}
	ident, err := f.Stat()
	if err != nil {
		f.Close()
		return
	}
	s.f.Close()
	s.f = f
	s.ident = ident
	s.index = newIndex
	s.scanned = off
	s.live = off
	s.dead = 0
	s.compactions.Add(1)
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	records := len(s.index)
	live, dead := s.live, s.dead
	s.mu.Unlock()
	s.errMu.Lock()
	lastErr := s.lastErr
	s.errMu.Unlock()
	return Stats{
		Records:     records,
		LiveBytes:   live,
		DeadBytes:   dead,
		Gets:        s.gets.Load(),
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		Writes:      s.writes.Load(),
		ArmedSkips:  s.armedSkips.Load(),
		Corruptions: s.corruptions.Load(),
		Recoveries:  s.recoveries.Load(),
		Compactions: s.compactions.Load(),
		Rescans:     s.rescans.Load(),

		WriteErrors:    s.writeErrors.Load(),
		LastWriteError: lastErr,
	}
}

// flock takes the advisory lock on the sidecar lock file (LOCK_SH or
// LOCK_EX), retrying on EINTR.
func (s *Store) flock(how int) error {
	if s.lockFile == nil {
		return ErrClosed
	}
	for {
		err := syscall.Flock(int(s.lockFile.Fd()), how)
		if err != syscall.EINTR {
			if err != nil {
				return fmt.Errorf("store: flock: %w", err)
			}
			return nil
		}
	}
}

func (s *Store) funlock() {
	if s.lockFile != nil {
		syscall.Flock(int(s.lockFile.Fd()), syscall.LOCK_UN)
	}
}

// encodeFrame builds one on-disk frame for the composite key and value.
func encodeFrame(key string, val []byte) []byte {
	frame := make([]byte, headerSize+len(key)+len(val))
	frame[4] = recordVersion
	binary.LittleEndian.PutUint32(frame[5:9], uint32(len(key)))
	binary.LittleEndian.PutUint32(frame[9:13], uint32(len(val)))
	copy(frame[headerSize:], key)
	copy(frame[headerSize+len(key):], val)
	binary.LittleEndian.PutUint32(frame[0:4], crc32.ChecksumIEEE(frame[4:]))
	return frame
}

var _ io.Closer = (*Store)(nil)
