package corpus

import "lisa/internal/ticket"

// Shared infrastructure layers. Every case of a system embeds its system's
// infrastructure classes (metrics, configuration, connection/registry
// plumbing), mirroring how real subsystems sit on common server scaffolding.
// Infrastructure never calls contract-protected operations, so it widens
// the codebase and the test corpus without perturbing the rule analyses —
// its tests are exactly the "unrelated tests" that similarity-based
// selection must learn to skip.

const zkInfraSrc = `
class ZkMetrics {
	map counters;

	void init() {
		counters = newMap();
	}

	void incr(string name) {
		int cur = 0;
		if (counters.has(name)) {
			cur = counters.get(name);
		}
		counters.put(name, cur + 1);
	}

	int count(string name) {
		if (counters.has(name)) {
			return counters.get(name);
		}
		return 0;
	}
}

class ZkServerConfig {
	int tickTime;
	int maxClientCnxns;
	bool readOnlyMode;

	void init() {
		tickTime = 2000;
		maxClientCnxns = 60;
		readOnlyMode = false;
	}

	int sessionTimeoutFloor() {
		return tickTime * 2;
	}

	int sessionTimeoutCeiling() {
		return tickTime * 20;
	}
}

class ZkConnectionTable {
	map conns;
	ZkMetrics metrics;

	void init(ZkMetrics m) {
		conns = newMap();
		metrics = m;
	}

	void register(string id, string addr) {
		conns.put(id, addr);
		metrics.incr("connections.opened");
	}

	string lookup(string id) {
		if (conns.has(id)) {
			return conns.get(id);
		}
		return "";
	}

	bool drop(string id) {
		if (!conns.has(id)) {
			return false;
		}
		conns.remove(id);
		metrics.incr("connections.closed");
		return true;
	}

	int open() {
		return conns.size();
	}
}
`

const hdfsInfraSrc = `
class HdfsMetrics {
	map counters;

	void init() {
		counters = newMap();
	}

	void incr(string name) {
		int cur = 0;
		if (counters.has(name)) {
			cur = counters.get(name);
		}
		counters.put(name, cur + 1);
	}

	int count(string name) {
		if (counters.has(name)) {
			return counters.get(name);
		}
		return 0;
	}
}

class HeartbeatMonitor {
	map lastSeen;
	int staleAfter;

	void init(int staleMillis) {
		lastSeen = newMap();
		staleAfter = staleMillis;
	}

	void beat(string nodeId) {
		lastSeen.put(nodeId, now());
	}

	bool isStale(string nodeId) {
		if (!lastSeen.has(nodeId)) {
			return true;
		}
		int seen = lastSeen.get(nodeId);
		return now() - seen > staleAfter;
	}

	list staleNodes() {
		list out = newList();
		for (id in lastSeen.keys()) {
			if (isStale(id)) {
				out.add(id);
			}
		}
		return out;
	}
}
`

const hbaseInfraSrc = `
class HbaseMetrics {
	map counters;

	void init() {
		counters = newMap();
	}

	void incr(string name) {
		int cur = 0;
		if (counters.has(name)) {
			cur = counters.get(name);
		}
		counters.put(name, cur + 1);
	}

	int count(string name) {
		if (counters.has(name)) {
			return counters.get(name);
		}
		return 0;
	}
}

class RegionBalancer {
	map loadByServer;

	void init() {
		loadByServer = newMap();
	}

	void report(string server, int regions) {
		loadByServer.put(server, regions);
	}

	string mostLoaded() {
		string worst = "";
		int max = -1;
		for (srv in loadByServer.keys()) {
			int load = loadByServer.get(srv);
			if (load > max) {
				max = load;
				worst = srv;
			}
		}
		return worst;
	}

	int imbalance() {
		int max = 0;
		int min = 1000000;
		for (srv in loadByServer.keys()) {
			int load = loadByServer.get(srv);
			max = max(max, load);
			min = min(min, load);
		}
		if (min > max) {
			return 0;
		}
		return max - min;
	}
}
`

const cassInfraSrc = `
class CassMetrics {
	map counters;

	void init() {
		counters = newMap();
	}

	void incr(string name) {
		int cur = 0;
		if (counters.has(name)) {
			cur = counters.get(name);
		}
		counters.put(name, cur + 1);
	}

	int count(string name) {
		if (counters.has(name)) {
			return counters.get(name);
		}
		return 0;
	}
}

class GossipDigest {
	map versions;

	void init() {
		versions = newMap();
	}

	void observe(string node, int generation) {
		if (versions.has(node)) {
			int cur = versions.get(node);
			if (generation > cur) {
				versions.put(node, generation);
			}
		} else {
			versions.put(node, generation);
		}
	}

	int generation(string node) {
		if (versions.has(node)) {
			return versions.get(node);
		}
		return 0;
	}

	int clusterSize() {
		return versions.size();
	}
}
`

// infraSrc returns the infrastructure layer for a system.
func infraSrc(system string) string {
	switch system {
	case "zksim":
		return zkInfraSrc
	case "hdfssim":
		return hdfsInfraSrc
	case "hbasesim":
		return hbaseInfraSrc
	case "cassandrasim":
		return cassInfraSrc
	}
	return ""
}

// infraTests returns the infrastructure test cases for a system — part of
// every case's suite, and deliberately unrelated to the contract features.
func infraTests(system string) []ticket.TestCase {
	switch system {
	case "zksim":
		return []ticket.TestCase{
			{
				Name:        "ZkInfraTest.connectionLifecycle",
				Description: "connection table registers, resolves and drops client connections with metrics",
				Class:       "ZkInfraTest", Method: "connectionLifecycle",
				Source: `
class ZkInfraTest {
	static void connectionLifecycle() {
		ZkMetrics m = new ZkMetrics();
		ZkConnectionTable t = new ZkConnectionTable(m);
		t.register("c1", "10.0.0.1:2181");
		t.register("c2", "10.0.0.2:2181");
		assertTrue(t.open() == 2, "two open");
		assertTrue(t.lookup("c1") == "10.0.0.1:2181", "resolve");
		assertTrue(t.drop("c1"), "drop");
		assertTrue(!t.drop("c1"), "double drop refused");
		assertTrue(m.count("connections.opened") == 2, "open metric");
		assertTrue(m.count("connections.closed") == 1, "close metric");
	}
}
`,
			},
			{
				Name:        "ZkInfraTest.configTimeouts",
				Description: "server config derives session timeout bounds from the tick time",
				Class:       "ZkInfraTest", Method: "configTimeouts",
				Source: `
class ZkInfraTest {
	static void configTimeouts() {
		ZkServerConfig c = new ZkServerConfig();
		assertTrue(c.sessionTimeoutFloor() == 4000, "floor");
		assertTrue(c.sessionTimeoutCeiling() == 40000, "ceiling");
		assertTrue(!c.readOnlyMode, "writable by default");
	}
}
`,
			},
		}
	case "hdfssim":
		return []ticket.TestCase{
			{
				Name:        "HdfsInfraTest.heartbeatStaleness",
				Description: "heartbeat monitor marks silent datanodes stale after the window",
				Class:       "HdfsInfraTest", Method: "heartbeatStaleness",
				Source: `
class HdfsInfraTest {
	static void heartbeatStaleness() {
		HeartbeatMonitor hb = new HeartbeatMonitor(100);
		hb.beat("dn1");
		hb.beat("dn2");
		assertTrue(!hb.isStale("dn1"), "fresh");
		sleep(200);
		hb.beat("dn2");
		assertTrue(hb.isStale("dn1"), "dn1 went silent");
		assertTrue(!hb.isStale("dn2"), "dn2 kept beating");
		list stale = hb.staleNodes();
		assertTrue(stale.size() == 1, "one stale node");
	}
}
`,
			},
		}
	case "hbasesim":
		return []ticket.TestCase{
			{
				Name:        "HbaseInfraTest.balancerImbalance",
				Description: "region balancer finds the most loaded server and the imbalance spread",
				Class:       "HbaseInfraTest", Method: "balancerImbalance",
				Source: `
class HbaseInfraTest {
	static void balancerImbalance() {
		RegionBalancer b = new RegionBalancer();
		b.report("rs1", 30);
		b.report("rs2", 10);
		b.report("rs3", 22);
		assertTrue(b.mostLoaded() == "rs1", "rs1 heaviest");
		assertTrue(b.imbalance() == 20, "spread 30-10");
	}
}
`,
			},
		}
	case "cassandrasim":
		return []ticket.TestCase{
			{
				Name:        "CassInfraTest.gossipGenerations",
				Description: "gossip digest keeps the maximum generation per node",
				Class:       "CassInfraTest", Method: "gossipGenerations",
				Source: `
class CassInfraTest {
	static void gossipGenerations() {
		GossipDigest g = new GossipDigest();
		g.observe("n1", 3);
		g.observe("n1", 7);
		g.observe("n1", 5);
		g.observe("n2", 1);
		assertTrue(g.generation("n1") == 7, "max generation kept");
		assertTrue(g.generation("n3") == 0, "unknown node");
		assertTrue(g.clusterSize() == 2, "two nodes");
	}
}
`,
			},
		}
	}
	return nil
}

// finishCase attaches the system infrastructure to every source snapshot of
// the case and appends the infrastructure tests to its suite.
func finishCase(cs *ticket.Case) *ticket.Case {
	infra := infraSrc(cs.System)
	for _, tk := range cs.Tickets {
		tk.BuggySource += infra
		tk.FixedSource += infra
	}
	if cs.Latest != "" {
		cs.Latest += infra
	}
	cs.Tests = append(cs.Tests, extraTests(cs.ID)...)
	cs.Tests = append(cs.Tests, infraTests(cs.System)...)
	return cs
}
