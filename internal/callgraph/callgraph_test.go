package callgraph

import (
	"strings"
	"testing"

	"lisa/internal/minij"
)

func compile(t *testing.T, src string) *minij.Program {
	t.Helper()
	prog, err := minij.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := minij.Check(prog); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return prog
}

const pipelineSrc = `
class DataTree {
	map nodes;

	void createNode(string path, Session s) {
		nodes.put(path, s);
	}
}

class Session {
	bool closing;
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null) {
			throw "KeeperException";
		}
		tree.createNode(path, s);
	}
}

class FollowerProcessor {
	DataTree tree;

	void forwardCreate(string path, Session s) {
		tree.createNode(path, s);
	}
}

class Server {
	PrepProcessor prep;
	FollowerProcessor follower;

	void handleClient(string path, Session s) {
		prep.processCreate(path, s);
	}

	void handleFollower(string path, Session s) {
		follower.forwardCreate(path, s);
	}
}
`

func TestBuildEdges(t *testing.T) {
	prog := compile(t, pipelineSrc)
	g := Build(prog)
	create := prog.Method("DataTree", "createNode")
	callers := g.Callers[create]
	if len(callers) != 2 {
		t.Fatalf("createNode callers = %d, want 2", len(callers))
	}
	names := map[string]bool{}
	for _, cs := range callers {
		names[cs.Caller.FullName()] = true
		if cs.Dynamic {
			t.Errorf("edge %v should be static", cs)
		}
	}
	if !names["PrepProcessor.processCreate"] || !names["FollowerProcessor.forwardCreate"] {
		t.Errorf("callers = %v", names)
	}
}

func TestRoots(t *testing.T) {
	prog := compile(t, pipelineSrc)
	g := Build(prog)
	var names []string
	for _, m := range g.Roots() {
		names = append(names, m.FullName())
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "Server.handleClient") || !strings.Contains(joined, "Server.handleFollower") {
		t.Errorf("roots = %v", names)
	}
	if strings.Contains(joined, "DataTree.createNode") {
		t.Errorf("createNode should not be a root: %v", names)
	}
}

func TestExecutionTree(t *testing.T) {
	prog := compile(t, pipelineSrc)
	g := Build(prog)
	target := prog.Method("DataTree", "createNode")
	tree := g.ExecutionTree(target, TreeOptions{})
	if tree.Truncated {
		t.Error("tree unexpectedly truncated")
	}
	if len(tree.Paths) != 2 {
		t.Fatalf("paths = %d, want 2:\n%v", len(tree.Paths), tree.Paths)
	}
	var rendered []string
	for _, p := range tree.Paths {
		rendered = append(rendered, p.String())
		if p.Entry(target).Class.Name != "Server" {
			t.Errorf("path entry = %s, want Server.*", p.Entry(target).FullName())
		}
	}
	wantA := "Server.handleClient -> PrepProcessor.processCreate -> DataTree.createNode"
	wantB := "Server.handleFollower -> FollowerProcessor.forwardCreate -> DataTree.createNode"
	got := strings.Join(rendered, "\n")
	if !strings.Contains(got, wantA) || !strings.Contains(got, wantB) {
		t.Errorf("paths:\n%s", got)
	}
}

func TestExecutionTreeDirectEntry(t *testing.T) {
	src := `
class API {
	static void doThing() {
		log("x");
	}
}
`
	prog := compile(t, src)
	g := Build(prog)
	target := prog.Method("API", "doThing")
	tree := g.ExecutionTree(target, TreeOptions{})
	if len(tree.Paths) != 1 || len(tree.Paths[0]) != 0 {
		t.Errorf("direct-entry tree = %v", tree.Paths)
	}
	if MethodsOnPath(tree.Paths[0], target)[0] != target {
		t.Error("MethodsOnPath on empty path should yield the target")
	}
}

func TestExecutionTreeCycles(t *testing.T) {
	src := `
class R {
	void a(int n) {
		if (n > 0) {
			b(n - 1);
		}
		leaf();
	}

	void b(int n) {
		a(n);
	}

	void leaf() {
		log("leaf");
	}
}

class Main {
	R r;

	void run() {
		r.a(3);
	}
}
`
	prog := compile(t, src)
	g := Build(prog)
	target := prog.Method("R", "leaf")
	tree := g.ExecutionTree(target, TreeOptions{})
	if tree.Truncated {
		t.Error("cycle should not truncate, just stop")
	}
	// Acyclic chains to leaf: run->a->leaf and run->a->b->a is cyclic (a
	// repeats), so only one path.
	if len(tree.Paths) != 1 {
		t.Errorf("paths = %v", tree.Paths)
	}
}

func TestDynamicDispatchEdges(t *testing.T) {
	src := `
class Worker {
	int run(int x) {
		return x + 1;
	}
}

class Other {
	int run(int x) {
		return x * 2;
	}
}

class Pool {
	list workers;

	int dispatch(int x) {
		int total = 0;
		for (w in workers) {
			total = total + w.run(x);
		}
		return total;
	}
}
`
	prog := compile(t, src)
	g := Build(prog)
	pool := prog.Method("Pool", "dispatch")
	edges := g.Callees[pool]
	var dynamic int
	for _, e := range edges {
		if e.Dynamic {
			dynamic++
		}
	}
	if dynamic != 2 {
		t.Errorf("dynamic edges = %d, want 2 (Worker.run, Other.run)", dynamic)
	}
}

func TestReachable(t *testing.T) {
	prog := compile(t, pipelineSrc)
	g := Build(prog)
	entry := prog.Method("Server", "handleClient")
	seen := g.Reachable([]*minij.Method{entry})
	if !seen[prog.Method("DataTree", "createNode")] {
		t.Error("createNode should be reachable from handleClient")
	}
	if seen[prog.Method("FollowerProcessor", "forwardCreate")] {
		t.Error("forwardCreate should not be reachable from handleClient")
	}
}

func TestCustomEntries(t *testing.T) {
	prog := compile(t, pipelineSrc)
	g := Build(prog)
	target := prog.Method("DataTree", "createNode")
	tree := g.ExecutionTree(target, TreeOptions{
		IsEntry: func(m *minij.Method) bool { return m.Class.Name == "PrepProcessor" },
	})
	if len(tree.Paths) != 1 {
		t.Fatalf("paths = %v", tree.Paths)
	}
	if got := tree.Paths[0].String(); !strings.HasPrefix(got, "PrepProcessor.processCreate") {
		t.Errorf("path = %s", got)
	}
}

func TestMaxPathsTruncation(t *testing.T) {
	// Diamond fan-in: each layer doubles the path count.
	src := `
class D {
	void sink() {
		log("s");
	}
	void a1() { sink(); }
	void a2() { sink(); }
	void b1() { a1(); a2(); }
	void b2() { a1(); a2(); }
	void c1() { b1(); b2(); }
	void c2() { b1(); b2(); }
	void top() { c1(); c2(); }
}
`
	prog := compile(t, src)
	g := Build(prog)
	target := prog.Method("D", "sink")
	tree := g.ExecutionTree(target, TreeOptions{MaxPaths: 3})
	if !tree.Truncated {
		t.Error("expected truncation")
	}
	if len(tree.Paths) > 3 {
		t.Errorf("paths = %d, want <= 3", len(tree.Paths))
	}
	full := g.ExecutionTree(target, TreeOptions{})
	if full.Truncated || len(full.Paths) != 8 {
		t.Errorf("full tree = %d paths (truncated=%v), want 8", len(full.Paths), full.Truncated)
	}
}
