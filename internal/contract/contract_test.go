package contract

import (
	"strings"
	"testing"

	"lisa/internal/interp"
	"lisa/internal/minij"
	"lisa/internal/smt"
)

func compile(t *testing.T, src string) *minij.Program {
	t.Helper()
	prog, err := minij.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := minij.Check(prog); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return prog
}

const zkLikeSrc = `
class Session {
	bool closing;
	int ttl;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, s);
	}
}

class FollowerProcessor {
	DataTree tree;

	void forward(string path, Session sess) {
		if (sess == null) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, sess);
	}
}
`

func ephemeralSemantic(t *testing.T) *Semantic {
	t.Helper()
	sem := &Semantic{
		ID:          "zk-ephemeral-closing",
		Description: "No client may create an ephemeral node when the session is in the CLOSING state.",
		HighLevel:   "Every ephemeral node is deleted once its client session is fully disconnected.",
		Kind:        StateKind,
		Target: TargetPattern{
			Callee: "DataTree.createEphemeral",
			Bind:   map[string]int{"session": 1},
		},
		Pre: smt.MustParsePredicate(`session != null && session.closing == false`),
	}
	if err := sem.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return sem
}

func TestMatchFindsAllCallSites(t *testing.T) {
	prog := compile(t, zkLikeSrc)
	sem := ephemeralSemantic(t)
	sites := Match(sem, prog)
	if len(sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(sites))
	}
	methods := []string{sites[0].Method.FullName(), sites[1].Method.FullName()}
	if methods[0] != "FollowerProcessor.forward" || methods[1] != "PrepProcessor.processCreate" {
		t.Errorf("site methods = %v", methods)
	}
}

func TestSiteBindingAndChecker(t *testing.T) {
	prog := compile(t, zkLikeSrc)
	sem := ephemeralSemantic(t)
	sites := Match(sem, prog)
	for _, site := range sites {
		path, ok := site.BindingPath("session")
		if !ok {
			t.Fatalf("site %s: binding failed", site)
		}
		checker, ok := SiteChecker(site)
		if !ok {
			t.Fatalf("site %s: checker failed", site)
		}
		want := path + " != null && !(" + path + ".closing)"
		if checker.String() != want {
			t.Errorf("checker at %s = %q, want %q", site, checker, want)
		}
	}
}

func TestMatchWithinRestriction(t *testing.T) {
	prog := compile(t, zkLikeSrc)
	sem := ephemeralSemantic(t)
	sem.Target.Within = "PrepProcessor.processCreate"
	sites := Match(sem, prog)
	if len(sites) != 1 || sites[0].Method.FullName() != "PrepProcessor.processCreate" {
		t.Errorf("sites = %v", sites)
	}
}

func TestReceiverSlotBinding(t *testing.T) {
	src := `
class Snapshot {
	bool expired;

	void materialize() {
		log("materialize");
	}
}

class Manager {
	void restore(Snapshot snap) {
		snap.materialize();
	}
}
`
	prog := compile(t, src)
	sem := &Semantic{
		ID:   "hbase-snapshot-expiry",
		Kind: StateKind,
		Target: TargetPattern{
			Callee: "Snapshot.materialize",
			Bind:   map[string]int{"snap": ReceiverSlot},
		},
		Pre: smt.MustParsePredicate(`snap.expired == false`),
	}
	if err := sem.Validate(); err != nil {
		t.Fatal(err)
	}
	sites := Match(sem, prog)
	if len(sites) != 1 {
		t.Fatalf("sites = %d, want 1", len(sites))
	}
	checker, ok := SiteChecker(sites[0])
	if !ok {
		t.Fatal("checker failed")
	}
	if checker.String() != "!(snap.expired)" {
		t.Errorf("checker = %q", checker)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		sem  *Semantic
		want string
	}{
		{&Semantic{}, "without ID"},
		{&Semantic{ID: "x", Kind: StateKind}, "without target"},
		{&Semantic{ID: "x", Kind: StateKind, Target: TargetPattern{Callee: "A.b"}}, "without precondition"},
		{&Semantic{ID: "x", Kind: StructuralKind}, "without rule"},
		{
			&Semantic{
				ID: "x", Kind: StateKind,
				Target: TargetPattern{Callee: "A.b", Bind: map[string]int{"s": 0}},
				Pre:    smt.MustParsePredicate(`other != null`),
			},
			"not bound",
		},
	}
	for _, c := range cases {
		err := c.sem.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%v) = %v, want containing %q", c.sem, err, c.want)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	sem := &Semantic{
		ID:   "a",
		Kind: StateKind,
		Target: TargetPattern{
			Callee: "X.y",
			Bind:   map[string]int{"v": 0},
		},
		Pre: smt.MustParsePredicate(`v != null`),
	}
	if err := r.Add(sem); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Get("a") != sem {
		t.Error("registry add/get broken")
	}
	// Replacement keeps order and count.
	sem2 := &Semantic{
		ID:   "a",
		Kind: StateKind,
		Target: TargetPattern{
			Callee: "X.y",
			Bind:   map[string]int{"v": 0},
		},
		Pre: smt.MustParsePredicate(`v != null && v.open`),
	}
	if err := r.Add(sem2); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Get("a") != sem2 || r.All()[0] != sem2 {
		t.Error("registry replacement broken")
	}
	if err := r.Add(&Semantic{}); err == nil {
		t.Error("invalid semantic should not register")
	}
}

const syncBlockingSrc = `
class Serializer {
	map longKeyMap;
	list nodes;

	void serializeNode(string pathStr) {
		synchronized (nodes) {
			ioWrite("node", pathStr);
		}
	}

	void serializeACL() {
		synchronized (longKeyMap) {
			writeEntries();
		}
	}

	void writeEntries() {
		for (k in longKeyMap.keys()) {
			ioWrite("acl", k);
		}
	}

	void safeSnapshot() {
		list copy = newList();
		synchronized (nodes) {
			copy.addAll(nodes);
		}
		for (n in copy) {
			ioWrite("node", n);
		}
	}
}
`

func TestNoBlockingInSyncStatic(t *testing.T) {
	prog := compile(t, syncBlockingSrc)
	rule := NoBlockingInSync{}
	vs := rule.Check(prog)
	if len(vs) != 2 {
		for _, v := range vs {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("violations = %d, want 2", len(vs))
	}
	// Direct violation in serializeNode.
	if vs[1].Method.FullName() != "Serializer.serializeNode" || len(vs[1].Chain) != 1 {
		t.Errorf("direct violation = %s", vs[1])
	}
	// Interprocedural violation through writeEntries.
	if vs[0].Method.FullName() != "Serializer.serializeACL" {
		t.Errorf("indirect violation = %s", vs[0])
	}
	if len(vs[0].Chain) != 2 || vs[0].Chain[0] != "Serializer.writeEntries" {
		t.Errorf("indirect chain = %v", vs[0].Chain)
	}
	for _, v := range vs {
		if v.Method.FullName() == "Serializer.safeSnapshot" {
			t.Errorf("safeSnapshot (I/O outside lock) flagged: %s", v)
		}
	}
}

func TestRuntimeBlockingMonitor(t *testing.T) {
	prog := compile(t, syncBlockingSrc)
	in := interp.New(prog)
	mon := &RuntimeBlockingMonitor{}
	mon.Attach(in)
	obj, err := in.Instantiate("Serializer")
	if err != nil {
		t.Fatal(err)
	}
	obj.Fields["nodes"] = &interp.List{Elems: []interp.Value{interp.Str("a")}}
	obj.Fields["longKeyMap"] = interp.NewMap()
	if _, err := in.CallInstance(obj, "safeSnapshot"); err != nil {
		t.Fatal(err)
	}
	if mon.Violated() {
		t.Errorf("safeSnapshot should not violate at runtime: %v", mon.Events)
	}
	if _, err := in.CallInstance(obj, "serializeNode", interp.Str("/p")); err != nil {
		t.Fatal(err)
	}
	if !mon.Violated() {
		t.Error("serializeNode should violate at runtime")
	}
}

func TestExprPath(t *testing.T) {
	src := `
class C {
	void m(Session s, map byId) {
		use(s.owner.closing);
		use(s.isClosing());
		use(byId.get("x"));
	}
	void use(bool b) {
	}
}

class Session {
	Session owner;
	bool closing;

	bool isClosing() {
		return closing;
	}
}
`
	// Adjust: use takes bool but byId.get returns any — lenient resolver accepts.
	prog := compile(t, src)
	m := prog.Method("C", "m")
	var paths []string
	var oks []bool
	for _, s := range m.Body.Stmts {
		call := s.(*minij.ExprStmt).E.(*minij.Call)
		p, ok := ExprPath(call.Args[0])
		paths = append(paths, p)
		oks = append(oks, ok)
	}
	if !oks[0] || paths[0] != "s.owner.closing" {
		t.Errorf("field chain path = %q ok=%v", paths[0], oks[0])
	}
	if !oks[1] || paths[1] != "s.isClosing" {
		t.Errorf("getter path = %q ok=%v", paths[1], oks[1])
	}
	if oks[2] {
		t.Errorf("call with args should not be a path, got %q", paths[2])
	}
}

const nestedSyncSrc = `
class Registry {
	map entries;
	list index;

	void init() {
		entries = newMap();
		index = newList();
	}

	void directNested(string k, string v) {
		synchronized (entries) {
			synchronized (index) {
				entries.put(k, v);
				index.add(k);
			}
		}
	}

	void indirectNested(string k) {
		synchronized (entries) {
			reindex(k);
		}
	}

	void reindex(string k) {
		synchronized (index) {
			index.add(k);
		}
	}

	void safeSequential(string k, string v) {
		synchronized (entries) {
			entries.put(k, v);
		}
		synchronized (index) {
			index.add(k);
		}
	}
}
`

func TestNoNestedSyncStatic(t *testing.T) {
	prog := compile(t, nestedSyncSrc)
	vs := NoNestedSync{}.Check(prog)
	if len(vs) != 2 {
		for _, v := range vs {
			t.Logf("finding: %s", v)
		}
		t.Fatalf("findings = %d, want 2", len(vs))
	}
	if vs[0].Method.FullName() != "Registry.directNested" {
		t.Errorf("first = %s", vs[0])
	}
	if vs[1].Method.FullName() != "Registry.indirectNested" {
		t.Errorf("second = %s", vs[1])
	}
	if len(vs[1].Chain) != 2 || vs[1].Chain[0] != "Registry.reindex" {
		t.Errorf("indirect chain = %v", vs[1].Chain)
	}
	for _, v := range vs {
		if v.Method.FullName() == "Registry.safeSequential" {
			t.Errorf("sequential locking flagged: %s", v)
		}
	}
	// Scoped form.
	scoped := NoNestedSync{Only: map[string]bool{"Registry.directNested": true}}
	if got := scoped.Check(prog); len(got) != 1 {
		t.Errorf("scoped findings = %d, want 1", len(got))
	}
}

func TestRuntimeNestedLockMonitor(t *testing.T) {
	prog := compile(t, nestedSyncSrc+`
class Drive {
	static void nested() {
		Registry r = new Registry();
		r.directNested("a", "1");
	}
	static void sequential() {
		Registry r = new Registry();
		r.safeSequential("b", "2");
	}
}
`)
	in := interp.New(prog)
	mon := &RuntimeNestedLockMonitor{}
	mon.Attach(in)
	if _, err := in.CallStatic("Drive", "sequential"); err != nil {
		t.Fatal(err)
	}
	if mon.Violated() {
		t.Errorf("sequential locking should not trigger: %v", mon.Events)
	}
	if _, err := in.CallStatic("Drive", "nested"); err != nil {
		t.Fatal(err)
	}
	if !mon.Violated() {
		t.Fatal("nested locking not observed")
	}
	ev := mon.Events[0]
	if ev.Method != "Registry.directNested" || ev.Depth != 2 {
		t.Errorf("event = %+v", ev)
	}
}

func TestNestedSyncSpecRoundTrip(t *testing.T) {
	sems, err := ParseSpec(`
rule lock-ordering
description: Never take a second lock while one is held.
structural: no-nested-sync
only: Registry.directNested
`)
	if err != nil {
		t.Fatal(err)
	}
	rule, ok := sems[0].Structural.(NoNestedSync)
	if !ok || !rule.Only["Registry.directNested"] {
		t.Fatalf("parsed = %#v", sems[0].Structural)
	}
	text := FormatSpec(sems)
	again, err := ParseSpec(text)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, text)
	}
	if again[0].Structural.Name() != sems[0].Structural.Name() {
		t.Errorf("name drift: %s vs %s", again[0].Structural.Name(), sems[0].Structural.Name())
	}
}
