package interp

import (
	"errors"
	"strings"
	"testing"

	"lisa/internal/minij"
)

func TestNestedTryCatch(t *testing.T) {
	src := `
class M {
	static string play() {
		string trace = "";
		try {
			try {
				throw "inner";
			} catch (e) {
				trace = trace + "caught-" + e + ";";
				throw "outer";
			}
		} catch (e) {
			trace = trace + "caught-" + e;
		}
		return trace;
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Str("caught-inner;caught-outer") {
		t.Errorf("trace = %v", v)
	}
}

func TestThrowInsideLoopCaughtOutside(t *testing.T) {
	src := `
class M {
	static int play() {
		int n = 0;
		try {
			while (true) {
				n = n + 1;
				if (n == 5) {
					throw "stop";
				}
			}
		} catch (e) {
			return n;
		}
		return -1;
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Int(5) {
		t.Errorf("n = %v", v)
	}
}

func TestForEachSnapshotsElements(t *testing.T) {
	// Mutating the list during iteration must not affect the snapshot.
	src := `
class M {
	static int play() {
		list xs = newList();
		xs.add(1);
		xs.add(2);
		int seen = 0;
		for (x in xs) {
			seen = seen + 1;
			xs.add(99);
		}
		return seen;
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Int(2) {
		t.Errorf("seen = %v, want 2 (snapshot semantics)", v)
	}
}

func TestShadowingScopes(t *testing.T) {
	src := `
class M {
	static int play() {
		int x = 1;
		if (x == 1) {
			int y = 10;
			x = x + y;
		}
		for (int i = 0; i < 2; i = i + 1) {
			int y = 100;
			x = x + y;
		}
		return x;
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Int(211) {
		t.Errorf("x = %v, want 211", v)
	}
}

func TestFieldShadowedByLocal(t *testing.T) {
	src := `
class C {
	int n;

	int both() {
		n = 5;
		int n = 10;
		return n;
	}

	int fieldValue() {
		return n;
	}
}

class M {
	static int play() {
		C c = new C();
		int local = c.both();
		return local * 100 + c.fieldValue();
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Int(1005) {
		t.Errorf("got %v, want 1005 (local 10, field 5)", v)
	}
}

func TestObjectAsMapKey(t *testing.T) {
	src := `
class Node {
	string id;
}

class M {
	static bool play() {
		map owners = newMap();
		Node a = new Node();
		a.id = "same";
		Node b = new Node();
		b.id = "same";
		owners.put(a, "first");
		owners.put(b, "second");
		return owners.size() == 2 && owners.get(a) == "first" && owners.get(b) == "second";
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Bool(true) {
		t.Error("object keys must use identity")
	}
}

func TestReferenceSemantics(t *testing.T) {
	src := `
class Box {
	int v;
}

class M {
	static int play() {
		Box a = new Box();
		Box b = a;
		b.v = 42;
		list xs = newList();
		xs.add(a);
		Box c = xs.get(0);
		c.v = c.v + 1;
		return a.v;
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Int(43) {
		t.Errorf("a.v = %v, want 43 (aliasing through locals and lists)", v)
	}
}

func TestVoidMethodReturnsNull(t *testing.T) {
	src := `
class M {
	static void noop() {
	}
}
`
	prog := compile(t, src)
	in := New(prog)
	v, err := in.CallStatic("M", "noop")
	if err != nil {
		t.Fatal(err)
	}
	if !IsNull(v) {
		t.Errorf("void return = %v", v)
	}
}

func TestFallOffNonVoidYieldsZero(t *testing.T) {
	src := `
class M {
	static int partial(bool b) {
		if (b) {
			return 7;
		}
	}
}
`
	prog := compile(t, src)
	in := New(prog)
	v, err := in.CallStatic("M", "partial", Bool(false))
	if err != nil {
		t.Fatal(err)
	}
	if v != Int(0) {
		t.Errorf("fall-off value = %v, want 0", v)
	}
}

func TestExceptionUnwindReleasesLocks(t *testing.T) {
	src := `
class M {
	static void play(list l) {
		try {
			synchronized (l) {
				throw "boom";
			}
		} catch (e) {
			log(e);
		}
	}
}
`
	prog := compile(t, src)
	in := New(prog)
	if _, err := in.CallStatic("M", "play", &List{}); err != nil {
		t.Fatal(err)
	}
	if in.LocksHeld() != 0 {
		t.Errorf("locks held after unwind: %d", in.LocksHeld())
	}
}

func TestSynchronizedOnNullThrows(t *testing.T) {
	src := `
class M {
	static string play() {
		list l = null;
		try {
			synchronized (l) {
				log("inside");
			}
		} catch (e) {
			return e;
		}
		return "no error";
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Str("NullPointerException") {
		t.Errorf("got %v", v)
	}
}

func TestForEachOverNullThrows(t *testing.T) {
	src := `
class M {
	static string play() {
		list l = null;
		try {
			for (x in l) {
				log(x);
			}
		} catch (e) {
			return e;
		}
		return "no error";
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Str("NullPointerException") {
		t.Errorf("got %v", v)
	}
}

func TestStringConcatCoercions(t *testing.T) {
	src := `
class M {
	static string play() {
		return "n=" + 5 + " b=" + true + " nil=" + null;
	}
}
`
	v, _ := run(t, src, "M", "play")
	if v != Str("n=5 b=true nil=null") {
		t.Errorf("got %q", v)
	}
}

func TestListIndexErrors(t *testing.T) {
	src := `
class M {
	static string play(int idx) {
		list xs = newList();
		xs.add(1);
		try {
			int v = xs.get(idx);
			return "ok " + v;
		} catch (e) {
			return e;
		}
	}
}
`
	if v, _ := run(t, src, "M", "play", Int(0)); v != Str("ok 1") {
		t.Errorf("in range: %v", v)
	}
	if v, _ := run(t, src, "M", "play", Int(5)); v != Str("IndexOutOfBounds") {
		t.Errorf("out of range: %v", v)
	}
	if v, _ := run(t, src, "M", "play", Int(-1)); v != Str("IndexOutOfBounds") {
		t.Errorf("negative: %v", v)
	}
}

func TestHookOrderBranchBeforeNestedStmt(t *testing.T) {
	src := `
class M {
	static void play(bool p) {
		if (p) {
			log("then");
		}
	}
}
`
	prog := compile(t, src)
	in := New(prog)
	var events []string
	in.Hooks.OnStmt = func(s minij.Stmt, fr *Frame) {
		events = append(events, "stmt:"+minij.CanonStmt(s))
	}
	in.Hooks.OnBranch = func(s minij.Stmt, cond minij.Expr, taken bool, fr *Frame) {
		events = append(events, "branch")
	}
	if _, err := in.CallStatic("M", "play", Bool(true)); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(events, "|")
	// The branch event must come after the if's OnStmt but before the
	// then-body statement.
	want := "stmt:if (p)|branch|stmt:log(\"then\");"
	if joined != want {
		t.Errorf("event order = %q, want %q", joined, want)
	}
}

func TestStepBudgetCountsNestedCalls(t *testing.T) {
	src := `
class M {
	static int fib(int n) {
		if (n < 2) {
			return n;
		}
		return fib(n - 1) + fib(n - 2);
	}
}
`
	prog := compile(t, src)
	in := NewWithOptions(prog, Options{StepBudget: 100})
	_, err := in.CallStatic("M", "fib", Int(30))
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if in.Steps() < 100 {
		t.Errorf("steps = %d", in.Steps())
	}
}
