// Package testsel selects the tests that exercise a given execution path —
// the paper's RAG-style "LLM-based similarity search over test embeddings"
// (§3.2). A path is summarized as a feature description (its entry
// function, the methods traversed, and the guard conditions along it), and
// the test corpus is ranked against that description. Selected tests are
// over-approximations: they drive the concolic engine with concrete inputs
// likely to cover the path.
package testsel

import (
	"strings"

	"lisa/internal/callgraph"
	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/embedding"
	"lisa/internal/minij"
	"lisa/internal/ticket"
)

// Selector ranks tests against path features.
type Selector struct {
	tests  []ticket.TestCase
	byName map[string]ticket.TestCase
	index  *embedding.Index
}

// New builds a selector over the test corpus. Each test is embedded from
// its name, natural-language description, and source identifiers.
func New(tests []ticket.TestCase) *Selector {
	docs := make([]embedding.Doc, len(tests))
	byName := make(map[string]ticket.TestCase, len(tests))
	for i, tc := range tests {
		docs[i] = embedding.Doc{ID: tc.Name, Text: tc.Name + " " + tc.Description + " " + tc.Source}
		byName[tc.Name] = tc
	}
	return &Selector{tests: tests, byName: byName, index: embedding.NewIndex(docs)}
}

// Len returns the corpus size.
func (s *Selector) Len() int { return len(s.tests) }

// PathFeature summarizes an execution path for retrieval: the chain of
// methods from the entry function to the target plus the intraprocedural
// guards, which together identify the feature and the condition under
// which the feature takes this path.
func PathFeature(target *contract.Site, chain callgraph.Path, static *concolic.StaticPath) string {
	var sb strings.Builder
	for _, m := range callgraph.MethodsOnPath(chain, target.Method) {
		sb.WriteString(m.FullName())
		sb.WriteByte(' ')
	}
	sb.WriteString(minij.CanonStmt(target.Stmt))
	sb.WriteByte(' ')
	if static != nil {
		for _, g := range static.Guards {
			sb.WriteString(g.Guard)
			sb.WriteByte(' ')
		}
	}
	if target.Semantic != nil {
		sb.WriteString(target.Semantic.Description)
	}
	return sb.String()
}

// Select returns the top-k tests for a feature description, in rank order.
func (s *Selector) Select(feature string, k int) []ticket.TestCase {
	matches := s.index.Query(feature, k)
	out := make([]ticket.TestCase, 0, len(matches))
	for _, m := range matches {
		out = append(out, s.byName[m.ID])
	}
	return out
}

// SelectForSite unions the top-k tests across every (chain, static path)
// pair of a site, preserving first-seen rank order — the per-path selection
// of §3.2 rolled up to the site.
func (s *Selector) SelectForSite(site *contract.Site, chains []callgraph.Path, statics []*concolic.StaticPath, k int) []ticket.TestCase {
	seen := map[string]bool{}
	var out []ticket.TestCase
	add := func(tcs []ticket.TestCase) {
		for _, tc := range tcs {
			if !seen[tc.Name] {
				seen[tc.Name] = true
				out = append(out, tc)
			}
		}
	}
	if len(chains) == 0 {
		chains = []callgraph.Path{nil}
	}
	if len(statics) == 0 {
		statics = []*concolic.StaticPath{nil}
	}
	for _, ch := range chains {
		for _, sp := range statics {
			add(s.Select(PathFeature(site, ch, sp), k))
		}
	}
	return out
}

// All returns every test in corpus order (the no-selection baseline for the
// test-selection ablation).
func (s *Selector) All() []ticket.TestCase {
	out := make([]ticket.TestCase, len(s.tests))
	copy(out, s.tests)
	return out
}
