package minij

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics: arbitrary token soup must produce a parse error or
// a program — never a panic or an out-of-range access.
func TestParserNeverPanics(t *testing.T) {
	fragments := []string{
		"class", "if", "else", "while", "for", "return", "throw", "try",
		"catch", "synchronized", "new", "null", "true", "false", "int",
		"bool", "string", "list", "map", "void", "static", "break",
		"continue", "in",
		"x", "Foo", "m", "(", ")", "{", "}", ";", ",", ".",
		"+", "-", "*", "/", "%", "!", "=", "==", "!=", "<", "<=", ">",
		">=", "&&", "||", "42", `"s"`,
	}
	f := func(picks []uint16) bool {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(fragments[int(p)%len(fragments)])
			sb.WriteByte(' ')
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", sb.String(), r)
			}
		}()
		prog, err := Parse(sb.String())
		if err == nil && prog != nil {
			// A valid parse must survive the resolver without panicking.
			_ = Resolve(prog)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestLexerNeverPanics: arbitrary bytes must lex or error cleanly.
func TestLexerNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", data, r)
			}
		}()
		_, _ = Lex(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestFormatParsedPrograms: every syntactically valid random-ish program
// round-trips through the formatter.
func TestDeepNesting(t *testing.T) {
	// Deeply nested expressions and blocks must not blow the parser.
	depth := 200
	expr := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	src := "class D { int m() { return " + expr + "; } }"
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("deep parens: %v", err)
	}
	if err := Check(prog); err != nil {
		t.Fatalf("deep parens check: %v", err)
	}

	var blocks strings.Builder
	blocks.WriteString("class E { void m(bool p) { ")
	for i := 0; i < 100; i++ {
		blocks.WriteString("if (p) { ")
	}
	blocks.WriteString("log(1); ")
	for i := 0; i < 100; i++ {
		blocks.WriteString("} ")
	}
	blocks.WriteString("} }")
	prog2, err := Parse(blocks.String())
	if err != nil {
		t.Fatalf("deep blocks: %v", err)
	}
	if err := Check(prog2); err != nil {
		t.Fatalf("deep blocks check: %v", err)
	}
	if FormatProgram(prog2) == "" {
		t.Fatal("formatting failed")
	}
}

// TestEOFConditions: truncations of a valid program never panic.
func TestEOFConditions(t *testing.T) {
	src := `
class Session {
	bool closing;

	bool isClosing() {
		return closing;
	}
}

class M {
	static int run(Session s, int n) {
		if (s != null && !s.isClosing()) {
			for (int i = 0; i < n; i = i + 1) {
				log(str(i) + "x");
			}
		}
		try {
			throw "e";
		} catch (e) {
			return len(e);
		}
		return 0;
	}
}
`
	for i := 0; i <= len(src); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", i, r)
				}
			}()
			_, _ = Parse(src[:i])
		}()
	}
}
