package corpus

import "lisa/internal/ticket"

// ---------------------------------------------------------------------------
// Case 6: hdfs-observer-locations — §4 Bug #2's family. When the observer
// namenode's block report is delayed, listings must only return blocks with
// valid locations. Checks were added to getListing and then to getFileInfo;
// the latest head adds getBatchedListing without the check — the previously
// unknown bug LISA reports.
// ---------------------------------------------------------------------------

const hdfsObserverBase = `
class LocatedBlock {
	string blockId;
	list locations;
	bool located;

	bool hasLocations() {
		return located;
	}
}

class ListingResult {
	list entries;
	list skipped;

	void init() {
		entries = newList();
		skipped = newList();
	}

	void addBlock(LocatedBlock b) {
		entries.add(b.blockId);
	}

	void skipBlock(LocatedBlock b) {
		skipped.add(b.blockId);
	}
}

class BlockManager {
	map blocks;

	void init() {
		blocks = newMap();
	}

	void report(LocatedBlock b) {
		blocks.put(b.blockId, b);
	}

	LocatedBlock lookup(string id) {
		if (blocks.has(id)) {
			return blocks.get(id);
		}
		return null;
	}
}

class ObserverNameNode {
	BlockManager bm;
	bool auditEnabled;
	int rpcCount;

	void init(BlockManager m) {
		bm = m;
		auditEnabled = false;
		rpcCount = 0;
	}

	ListingResult getListing(list blockIds) {
		rpcCount = rpcCount + 1;
		if (auditEnabled) {
			log("getListing rpc " + str(rpcCount));
		}
		ListingResult out = new ListingResult();
		for (id in blockIds) {
			LocatedBlock b = bm.lookup(id);
			if (b != null) {
				if (b.hasLocations()) {
					out.addBlock(b);
				} else {
					out.skipBlock(b);
				}
			}
		}
		return out;
	}
}
`

const hdfsObserverFileInfoFixed = `
class FileInfoServer {
	BlockManager bm;

	void init(BlockManager m) {
		bm = m;
	}

	ListingResult getFileInfo(string id) {
		ListingResult out = new ListingResult();
		LocatedBlock b = bm.lookup(id);
		if (b != null) {
			if (b.hasLocations()) {
				out.addBlock(b);
			} else {
				out.skipBlock(b);
			}
		}
		return out;
	}
}
`

// hdfsObserverBatchedLatest is the head-of-tree addition that still misses
// the location check: the HDFS-17768 analogue.
const hdfsObserverBatchedLatest = `
class BatchedListingServer {
	BlockManager bm;

	void init(BlockManager m) {
		bm = m;
	}

	ListingResult getBatchedListing(list blockIds, int batchSize) {
		ListingResult out = new ListingResult();
		int taken = 0;
		for (id in blockIds) {
			if (taken < batchSize) {
				LocatedBlock b = bm.lookup(id);
				if (b != null) {
					out.addBlock(b);
					taken = taken + 1;
				}
			}
		}
		return out;
	}
}
`

func caseHdfsObserverLocations() *ticket.Case {
	v2 := hdfsObserverBase
	v1 := weaken(v2, `			if (b != null) {
				if (b.hasLocations()) {
					out.addBlock(b);
				} else {
					out.skipBlock(b);
				}
			}`, `			if (b != null) {
				out.addBlock(b);
			}`)
	v4 := hdfsObserverBase + hdfsObserverFileInfoFixed
	v3 := weaken(v4, `		LocatedBlock b = bm.lookup(id);
		if (b != null) {
			if (b.hasLocations()) {
				out.addBlock(b);
			} else {
				out.skipBlock(b);
			}
		}
		return out;`, `		LocatedBlock b = bm.lookup(id);
		if (b != null) {
			out.addBlock(b);
		}
		return out;`)
	latest := v4 + hdfsObserverBatchedLatest

	tests := []ticket.TestCase{
		{
			Name:        "ObserverTest.listingReturnsLocatedBlocks",
			Description: "observer listing returns blocks that have valid locations",
			Class:       "ObserverTest", Method: "listingReturnsLocatedBlocks",
			Source: `
class ObserverTest {
	static void listingReturnsLocatedBlocks() {
		BlockManager bm = new BlockManager();
		LocatedBlock b = new LocatedBlock();
		b.blockId = "blk1";
		b.located = true;
		bm.report(b);
		ObserverNameNode nn = new ObserverNameNode(bm);
		list ids = newList();
		ids.add("blk1");
		ListingResult r = nn.getListing(ids);
		assertTrue(r.entries.size() == 1, "block listed");
	}
}
`,
		},
		{
			Name:        "ObserverTest.listingSkipsUnlocatedBlocks",
			Description: "delayed block report: listing skips blocks without locations instead of returning empty locations",
			Class:       "ObserverTest", Method: "listingSkipsUnlocatedBlocks",
			Source: `
class ObserverTest {
	static void listingSkipsUnlocatedBlocks() {
		BlockManager bm = new BlockManager();
		LocatedBlock b = new LocatedBlock();
		b.blockId = "blk2";
		b.located = false;
		bm.report(b);
		ObserverNameNode nn = new ObserverNameNode(bm);
		list ids = newList();
		ids.add("blk2");
		ListingResult r = nn.getListing(ids);
		assertTrue(r.entries.size() == 0, "unlocated block not listed");
		assertTrue(r.skipped.size() == 1, "unlocated block skipped");
	}
}
`,
		},
		{
			Name:        "ObserverTest.fileInfoChecksLocations",
			Description: "file info path on observer checks block locations before returning",
			Class:       "ObserverTest", Method: "fileInfoChecksLocations",
			Source: `
class ObserverTest {
	static void fileInfoChecksLocations() {
		BlockManager bm = new BlockManager();
		LocatedBlock b = new LocatedBlock();
		b.blockId = "blk3";
		b.located = false;
		bm.report(b);
		FileInfoServer fi = new FileInfoServer(bm);
		ListingResult r = fi.getFileInfo("blk3");
		assertTrue(r.entries.size() == 0, "unlocated block not returned");
	}
}
`,
		},
		{
			Name:        "ObserverTest.batchedListingReturnsBatch",
			Description: "batched listing returns up to batchSize blocks from the observer",
			Class:       "ObserverTest", Method: "batchedListingReturnsBatch",
			Source: `
class ObserverTest {
	static void batchedListingReturnsBatch() {
		BlockManager bm = new BlockManager();
		LocatedBlock b = new LocatedBlock();
		b.blockId = "blk4";
		b.located = false;
		bm.report(b);
		BatchedListingServer bs = new BatchedListingServer(bm);
		list ids = newList();
		ids.add("blk4");
		ListingResult r = bs.getBatchedListing(ids, 10);
		assertTrue(r.entries.size() <= 1, "batch bounded");
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "hdfs-observer-locations",
		System:  "hdfssim",
		Feature: "observer namenode block locations",
		Description: "When the observer namenode's block report is delayed, listing results must not " +
			"return blocks without locations; missing locations mean the observer lags the active namenode.",
		FirstReported: 2018, LastReported: 2025, FeatureBugCount: 12,
		Tickets: []*ticket.Ticket{
			{
				ID:    "HDF-13924",
				Title: "Handle blockmissingexception when reading from observer",
				Description: "Clients reading from the observer received blocks with empty location lists " +
					"when the block report lagged; reads then failed with BlockMissingException.",
				Discussion:      []string{"Check hasLocations before adding a block to the listing."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "HDF-16732",
				Title: "Avoid get location from observer when the block report is delayed",
				Description: "The file-info path returned unlocated blocks from the observer — the same " +
					"missing-location semantics as HDF-13924 on a different RPC.",
				Discussion:      []string{"The location check exists in getListing but not getFileInfo."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Latest: latest,
		Tests:  tests,
	}
}

// ---------------------------------------------------------------------------
// Case 7: hdfs-lease-recovery — appends must hold a valid (unexpired)
// lease, or two writers corrupt the block chain.
// ---------------------------------------------------------------------------

const hdfsLeaseBase = `
class Lease {
	string holder;
	bool expired;

	bool isValid() {
		return !expired;
	}
}

class BlockChain {
	list appended;

	void init() {
		appended = newList();
	}

	void appendBlock(Lease l, string data) {
		appended.add(l.holder + ":" + data);
	}
}

class FSNamesystem {
	BlockChain chain;

	void init(BlockChain c) {
		chain = c;
	}

	void appendFile(Lease l, string data) {
		if (l == null || !l.isValid()) {
			throw "LeaseExpiredException";
		}
		chain.appendBlock(l, data);
	}
}
`

const hdfsLeaseTruncateFixed = `
class TruncateHandler {
	BlockChain chain;

	void init(BlockChain c) {
		chain = c;
	}

	void truncateFile(Lease l, string marker) {
		if (l == null || !l.isValid()) {
			throw "LeaseExpiredException";
		}
		chain.appendBlock(l, marker);
	}
}
`

func caseHdfsLeaseRecovery() *ticket.Case {
	v2 := hdfsLeaseBase
	v1 := weaken(v2, "if (l == null || !l.isValid()) {\n			throw \"LeaseExpiredException\";\n		}\n		chain.appendBlock(l, data);",
		"if (l == null) {\n			throw \"LeaseExpiredException\";\n		}\n		chain.appendBlock(l, data);")
	v4 := hdfsLeaseBase + hdfsLeaseTruncateFixed
	v3 := weaken(v4, "if (l == null || !l.isValid()) {\n			throw \"LeaseExpiredException\";\n		}\n		chain.appendBlock(l, marker);",
		"if (l == null) {\n			throw \"LeaseExpiredException\";\n		}\n		chain.appendBlock(l, marker);")

	tests := []ticket.TestCase{
		{
			Name:        "LeaseTest.appendWithValidLease",
			Description: "append with a valid lease reaches the block chain",
			Class:       "LeaseTest", Method: "appendWithValidLease",
			Source: `
class LeaseTest {
	static void appendWithValidLease() {
		BlockChain c = new BlockChain();
		FSNamesystem fs = new FSNamesystem(c);
		Lease l = new Lease();
		l.holder = "client1";
		l.expired = false;
		fs.appendFile(l, "data");
		assertTrue(c.appended.size() == 1, "appended");
	}
}
`,
		},
		{
			Name:        "LeaseTest.appendRejectsExpiredLease",
			Description: "append with an expired lease throws LeaseExpiredException",
			Class:       "LeaseTest", Method: "appendRejectsExpiredLease",
			Source: `
class LeaseTest {
	static void appendRejectsExpiredLease() {
		BlockChain c = new BlockChain();
		FSNamesystem fs = new FSNamesystem(c);
		Lease l = new Lease();
		l.holder = "client2";
		l.expired = true;
		bool rejected = false;
		try {
			fs.appendFile(l, "data");
		} catch (e) {
			rejected = true;
		}
		assertTrue(rejected, "expired lease rejected");
	}
}
`,
		},
		{
			Name:        "LeaseTest.truncateUsesLease",
			Description: "truncate path writes a truncation marker under the caller's lease",
			Class:       "LeaseTest", Method: "truncateUsesLease",
			Source: `
class LeaseTest {
	static void truncateUsesLease() {
		BlockChain c = new BlockChain();
		TruncateHandler th = new TruncateHandler(c);
		Lease l = new Lease();
		l.holder = "client3";
		l.expired = true;
		try {
			th.truncateFile(l, "trunc@42");
		} catch (e) {
			log(e);
		}
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "hdfs-lease-recovery",
		System:  "hdfssim",
		Feature: "lease enforcement",
		Description: "Block mutations require a valid lease; an expired lease accepted on any path lets " +
			"two writers interleave and corrupt the chain.",
		FirstReported: 2013, LastReported: 2022, FeatureBugCount: 15,
		Tickets: []*ticket.Ticket{
			{
				ID:    "HDF-6781",
				Title: "Append accepted with expired lease",
				Description: "appendFile validated only lease presence, not validity; a writer whose " +
					"lease had expired kept appending concurrently with the recovery writer.",
				Discussion:      []string{"Check lease validity, not just presence."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "HDF-9364",
				Title: "Truncate path bypasses lease validity check",
				Description: "The truncate feature added a second mutation path that only checks lease " +
					"presence — the HDF-6781 semantics violated again.",
				Discussion:      []string{"Every chain mutation needs the validity check."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Tests: tests,
	}
}

// ---------------------------------------------------------------------------
// Case 8: hdfs-decommission — a datanode may be marked decommissioned only
// once its blocks are fully re-replicated.
// ---------------------------------------------------------------------------

const hdfsDecomBase = `
class DataNode {
	string id;
	bool fullyReplicated;

	bool isFullyReplicated() {
		return fullyReplicated;
	}
}

class NodeRegistry {
	list decommissioned;

	void init() {
		decommissioned = newList();
	}

	void markDecommissioned(DataNode n) {
		decommissioned.add(n.id);
	}

	bool isDecommissioned(string id) {
		return decommissioned.contains(id);
	}
}

class DecommissionManager {
	NodeRegistry registry;

	void init(NodeRegistry r) {
		registry = r;
	}

	void completeDecommission(DataNode n) {
		if (n == null || !n.isFullyReplicated()) {
			return;
		}
		registry.markDecommissioned(n);
	}
}
`

const hdfsDecomMaintenanceFixed = `
class MaintenanceManager {
	NodeRegistry registry;

	void init(NodeRegistry r) {
		registry = r;
	}

	void exitMaintenance(DataNode n) {
		if (n == null || !n.isFullyReplicated()) {
			return;
		}
		registry.markDecommissioned(n);
	}
}
`

func caseHdfsDecommission() *ticket.Case {
	v2 := hdfsDecomBase
	v1 := weaken(v2, "if (n == null || !n.isFullyReplicated()) {\n			return;\n		}\n		registry.markDecommissioned(n);\n	}\n}\n",
		"if (n == null) {\n			return;\n		}\n		registry.markDecommissioned(n);\n	}\n}\n")
	v4 := hdfsDecomBase + hdfsDecomMaintenanceFixed
	v3 := weaken(v4, "	void exitMaintenance(DataNode n) {\n		if (n == null || !n.isFullyReplicated()) {",
		"	void exitMaintenance(DataNode n) {\n		if (n == null) {")

	tests := []ticket.TestCase{
		{
			Name:        "DecomTest.decommissionReplicatedNode",
			Description: "a fully replicated node completes decommission",
			Class:       "DecomTest", Method: "decommissionReplicatedNode",
			Source: `
class DecomTest {
	static void decommissionReplicatedNode() {
		NodeRegistry r = new NodeRegistry();
		DecommissionManager m = new DecommissionManager(r);
		DataNode n = new DataNode();
		n.id = "dn1";
		n.fullyReplicated = true;
		m.completeDecommission(n);
		assertTrue(r.isDecommissioned("dn1"), "decommissioned");
	}
}
`,
		},
		{
			Name:        "DecomTest.decommissionWaitsForReplication",
			Description: "an under-replicated node must not complete decommission",
			Class:       "DecomTest", Method: "decommissionWaitsForReplication",
			Source: `
class DecomTest {
	static void decommissionWaitsForReplication() {
		NodeRegistry r = new NodeRegistry();
		DecommissionManager m = new DecommissionManager(r);
		DataNode n = new DataNode();
		n.id = "dn2";
		n.fullyReplicated = false;
		m.completeDecommission(n);
		assertTrue(!r.isDecommissioned("dn2"), "still waiting");
	}
}
`,
		},
		{
			Name:        "DecomTest.maintenanceExitPath",
			Description: "exiting maintenance mode marks the node via the registry",
			Class:       "DecomTest", Method: "maintenanceExitPath",
			Source: `
class DecomTest {
	static void maintenanceExitPath() {
		NodeRegistry r = new NodeRegistry();
		MaintenanceManager m = new MaintenanceManager(r);
		DataNode n = new DataNode();
		n.id = "dn3";
		n.fullyReplicated = false;
		m.exitMaintenance(n);
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "hdfs-decommission",
		System:  "hdfssim",
		Feature: "datanode decommissioning",
		Description: "Marking a node decommissioned before its blocks are re-replicated silently drops " +
			"the only replicas.",
		FirstReported: 2014, LastReported: 2021, FeatureBugCount: 10,
		Tickets: []*ticket.Ticket{
			{
				ID:    "HDF-7374",
				Title: "Decommission completes with under-replicated blocks",
				Description: "completeDecommission marked nodes decommissioned without checking " +
					"replication; blocks with single replicas were lost.",
				Discussion:      []string{"Gate on isFullyReplicated."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[1]},
			},
			{
				ID:    "HDF-11218",
				Title: "Maintenance-mode exit repeats the decommission mistake",
				Description: "The new maintenance-mode feature marks nodes decommissioned on exit " +
					"without the replication check.",
				Discussion:      []string{"Same replication gate on the maintenance path."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
		},
		Tests: tests,
	}
}

// ---------------------------------------------------------------------------
// Case 9: hdfs-safemode — namespace mutations must be rejected while the
// namenode is in safe mode. Three mutation paths repeated the mistake.
// ---------------------------------------------------------------------------

const hdfsSafemodeV6 = `
class FSState {
	bool safeMode;

	bool isInSafeMode() {
		return safeMode;
	}
}

class EditLog {
	list ops;

	void init() {
		ops = newList();
	}

	void append(FSState st, string op) {
		ops.add(op);
	}
}

class DeleteHandler {
	EditLog editLog;

	void init(EditLog e) {
		editLog = e;
	}

	void deletePath(FSState st, string path) {
		if (st == null || st.isInSafeMode()) {
			throw "SafeModeException";
		}
		editLog.append(st, "delete " + path);
	}
}

class RenameHandler {
	EditLog editLog;

	void init(EditLog e) {
		editLog = e;
	}

	void renamePath(FSState st, string src, string dst) {
		if (st == null || st.isInSafeMode()) {
			throw "SafeModeException";
		}
		editLog.append(st, "rename " + src + " " + dst);
	}
}

class PermissionHandler {
	EditLog editLog;

	void init(EditLog e) {
		editLog = e;
	}

	void setPermission(FSState st, string path, int mode) {
		if (st == null || st.isInSafeMode()) {
			throw "SafeModeException";
		}
		editLog.append(st, "chmod " + path + " " + str(mode));
	}
}
`

func caseHdfsSafemode() *ticket.Case {
	v6 := hdfsSafemodeV6
	// v5: setPermission missing the guard (bug 3); v4: fixed rename; ...
	v5 := weaken(v6, "	void setPermission(FSState st, string path, int mode) {\n		if (st == null || st.isInSafeMode()) {",
		"	void setPermission(FSState st, string path, int mode) {\n		if (st == null) {")
	v4 := v6
	v3 := weaken(v4, "	void renamePath(FSState st, string src, string dst) {\n		if (st == null || st.isInSafeMode()) {",
		"	void renamePath(FSState st, string src, string dst) {\n		if (st == null) {")
	// The rename bug predates the permission path's guard state; keep the
	// permission handler guarded in v3/v4 so each ticket isolates one path.
	v2 := v4
	v1 := weaken(v2, "	void deletePath(FSState st, string path) {\n		if (st == null || st.isInSafeMode()) {",
		"	void deletePath(FSState st, string path) {\n		if (st == null) {")

	tests := []ticket.TestCase{
		{
			Name:        "SafeModeTest.deleteRejectedInSafeMode",
			Description: "delete is rejected while the namenode is in safe mode",
			Class:       "SafeModeTest", Method: "deleteRejectedInSafeMode",
			Source: `
class SafeModeTest {
	static void deleteRejectedInSafeMode() {
		EditLog e = new EditLog();
		DeleteHandler d = new DeleteHandler(e);
		FSState st = new FSState();
		st.safeMode = true;
		bool rejected = false;
		try {
			d.deletePath(st, "/tmp/x");
		} catch (ex) {
			rejected = true;
		}
		assertTrue(rejected, "delete rejected");
		assertTrue(e.ops.size() == 0, "no edit logged");
	}
}
`,
		},
		{
			Name:        "SafeModeTest.deleteAppliesWhenActive",
			Description: "delete applies and logs an edit once safe mode exits",
			Class:       "SafeModeTest", Method: "deleteAppliesWhenActive",
			Source: `
class SafeModeTest {
	static void deleteAppliesWhenActive() {
		EditLog e = new EditLog();
		DeleteHandler d = new DeleteHandler(e);
		FSState st = new FSState();
		st.safeMode = false;
		d.deletePath(st, "/tmp/y");
		assertTrue(e.ops.size() == 1, "edit logged");
	}
}
`,
		},
		{
			Name:        "SafeModeTest.renamePath",
			Description: "rename logs an edit with source and destination",
			Class:       "SafeModeTest", Method: "renamePath",
			Source: `
class SafeModeTest {
	static void renamePath() {
		EditLog e = new EditLog();
		RenameHandler r = new RenameHandler(e);
		FSState st = new FSState();
		st.safeMode = true;
		try {
			r.renamePath(st, "/a", "/b");
		} catch (ex) {
			log(ex);
		}
	}
}
`,
		},
		{
			Name:        "SafeModeTest.setPermission",
			Description: "set permission logs a chmod edit for the path",
			Class:       "SafeModeTest", Method: "setPermission",
			Source: `
class SafeModeTest {
	static void setPermission() {
		EditLog e = new EditLog();
		PermissionHandler p = new PermissionHandler(e);
		FSState st = new FSState();
		st.safeMode = true;
		try {
			p.setPermission(st, "/a", 644);
		} catch (ex) {
			log(ex);
		}
	}
}
`,
		},
	}

	return &ticket.Case{
		ID:      "hdfs-safemode",
		System:  "hdfssim",
		Feature: "safe mode enforcement",
		Description: "While in safe mode the namespace is read-only; every mutation RPC needs the safe " +
			"mode gate, and three of them shipped without it over the years.",
		FirstReported: 2011, LastReported: 2024, FeatureBugCount: 21,
		Tickets: []*ticket.Ticket{
			{
				ID:    "HDF-2114",
				Title: "Delete mutates namespace during safe mode",
				Description: "deletePath logged edits while the namenode was still in safe mode, " +
					"corrupting the edit log replay after restart.",
				Discussion:      []string{"Gate every mutation on isInSafeMode."},
				BuggySource:     v1,
				FixedSource:     v2,
				RegressionTests: []ticket.TestCase{tests[0]},
			},
			{
				ID:    "HDF-5079",
				Title: "Rename bypasses the safe mode gate",
				Description: "renamePath shipped without the safe-mode check that delete gained in " +
					"HDF-2114.",
				Discussion:      []string{"Same gate, second mutation path."},
				BuggySource:     v3,
				FixedSource:     v4,
				RegressionTests: []ticket.TestCase{tests[2]},
			},
			{
				ID:              "HDF-15293",
				Title:           "setPermission mutates during safe mode",
				Description:     "A decade after HDF-2114, the permission path repeated the same omission.",
				Discussion:      []string{"Third occurrence of the same low-level semantics."},
				BuggySource:     v5,
				FixedSource:     v6,
				RegressionTests: []ticket.TestCase{tests[3]},
			},
		},
		Tests: tests,
	}
}
