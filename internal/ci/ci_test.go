package ci

import (
	"strings"
	"testing"

	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/ticket"
)

const sysFixed = `
class Session {
	bool closing;
}

class DataTree {
	map nodes;

	void createEphemeral(string path, Session owner) {
		nodes.put(path, owner);
	}
}

class PrepProcessor {
	DataTree tree;

	void processCreate(string path, Session s) {
		if (s == null || s.closing) {
			throw "KeeperException";
		}
		tree.createEphemeral(path, s);
	}
}
`

const sysRegressed = sysFixed + `
class SessionTracker {
	DataTree tree;

	void touchAndRegister(string path, Session s) {
		if (s == null) {
			return;
		}
		tree.createEphemeral(path, s);
	}
}
`

const sysSafeChange = sysFixed + `
class SessionTracker {
	DataTree tree;

	void touchAndRegister(string path, Session s) {
		if (s == null || s.closing) {
			return;
		}
		tree.createEphemeral(path, s);
	}
}
`

func engineWithRule(t *testing.T) *core.Engine {
	t.Helper()
	e := core.New()
	_, err := e.ProcessTicket(&ticket.Ticket{
		ID:          "ZK-1208",
		Title:       "Ephemeral node on closing session",
		BuggySource: strings.Replace(sysFixed, " || s.closing", "", 1),
		FixedSource: sysFixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGateBlocksRegression(t *testing.T) {
	e := engineWithRule(t)
	res, err := Gate(e, Change{
		Author:    "dev",
		Summary:   "add session tracker fast path",
		OldSource: sysFixed,
		NewSource: sysRegressed,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatalf("regression passed the gate:\n%s", res.Summary())
	}
	sum := res.Summary()
	if !strings.Contains(sum, "BLOCKED") || !strings.Contains(sum, "SessionTracker.touchAndRegister") {
		t.Errorf("summary:\n%s", sum)
	}
	if res.DiffStat == "" {
		t.Error("missing diff stat")
	}
}

func TestGatePassesSafeChange(t *testing.T) {
	e := engineWithRule(t)
	res, err := Gate(e, Change{
		Summary:   "add session tracker with proper guard",
		OldSource: sysFixed,
		NewSource: sysSafeChange,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("safe change blocked:\n%s", res.Summary())
	}
}

func TestGateBlocksBrokenBuild(t *testing.T) {
	e := engineWithRule(t)
	res, err := Gate(e, Change{NewSource: "class Broken {"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("broken build passed")
	}
	if !strings.Contains(res.Summary(), "does not build") {
		t.Errorf("summary:\n%s", res.Summary())
	}
}

func TestGateWarnsOnUncoveredPath(t *testing.T) {
	e := engineWithRule(t)
	tests := []ticket.TestCase{{
		Name:        "T.unrelated",
		Description: "unrelated arithmetic",
		Class:       "T",
		Method:      "unrelated",
		Source: `
class T {
	static void unrelated() {
		assertTrue(true, "ok");
	}
}
`,
	}}
	res, err := Gate(e, Change{NewSource: sysSafeChange}, tests)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("blocked:\n%s", res.Summary())
	}
	warned := false
	for _, f := range res.Findings {
		if f.Severity == "WARN" && strings.Contains(f.Text, "no selected test") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("expected uncovered-path warning:\n%s", res.Summary())
	}
}

// TestGateBlocksPostconditionViolation: an authored contract with an
// ensure-clause blocks a change whose implementation stops establishing the
// postcondition.
func TestGateBlocksPostconditionViolation(t *testing.T) {
	source := `
class Txn {
	string id;
	bool applied;
}

class Ledger {
	list entries;

	void init() {
		entries = newList();
	}

	void commit(Txn t) {
		entries.add(t.id);
		t.applied = true;
	}
}

class API {
	Ledger ledger;

	void init(Ledger l) {
		ledger = l;
	}

	void submit(Txn t) {
		if (t == null) {
			throw "NullTxn";
		}
		ledger.commit(t);
	}
}
`
	broken := strings.Replace(source, "\t\tentries.add(t.id);\n\t\tt.applied = true;", "\t\tentries.add(t.id);", 1)
	if broken == source {
		t.Fatal("mutation failed")
	}
	sems, err := contract.ParseSpec(`
rule txn-applied
description: Committing a transaction marks it applied.
target: Ledger.commit
bind: t = arg 0
require: t != null
ensure: t.applied == true
`)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New()
	for _, sem := range sems {
		if err := e.Registry.Add(sem); err != nil {
			t.Fatal(err)
		}
	}
	tests := []ticket.TestCase{{
		Name:        "LedgerTest.submitCommits",
		Description: "submitting a transaction commits it to the ledger applied",
		Class:       "LedgerTest", Method: "submitCommits",
		Source: `
class LedgerTest {
	static void submitCommits() {
		Ledger l = new Ledger();
		API api = new API(l);
		Txn t = new Txn();
		t.id = "tx1";
		api.submit(t);
	}
}
`,
	}}
	good, err := Gate(e, Change{Summary: "baseline", NewSource: source}, tests)
	if err != nil {
		t.Fatal(err)
	}
	if !good.Pass {
		t.Fatalf("baseline blocked:\n%s", good.Summary())
	}
	bad, err := Gate(e, Change{Summary: "drop applied flag", OldSource: source, NewSource: broken}, tests)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Pass {
		t.Fatalf("postcondition regression passed the gate:\n%s", bad.Summary())
	}
	if !strings.Contains(bad.Summary(), "postcondition violated") {
		t.Errorf("summary:\n%s", bad.Summary())
	}
}
