package sched

import (
	"os"
	"path/filepath"
	"testing"

	"lisa/internal/faultinject"
	"lisa/internal/store"
)

func openStoreT(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func storeLogBytes(t *testing.T, st *store.Store) []byte {
	t.Helper()
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(st.Dir(), "store.log"))
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return b
}

// TestColdSchedulerOnWarmStore: a fresh scheduler (empty memory tier) over a
// store warmed by a previous scheduler serves every job from the disk tier —
// zero executed jobs — and renders a byte-identical report.
func TestColdSchedulerOnWarmStore(t *testing.T) {
	e := engineWithRule(t)
	base, _, err := New().Assert(e, sysFixed, testSuite(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := base.Render()

	st := openStoreT(t)
	warm := New()
	warm.Cache().SetStore(st)
	warmRep, _, err := warm.Assert(e, sysFixed, testSuite(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := warmRep.Render(); got != want {
		t.Fatalf("store-attached run differs from store-less run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if ts := warm.Cache().TierStats(); ts.DiskWrites == 0 {
		t.Fatalf("warm run wrote nothing to the store: %+v", ts)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	cold := New()
	cold.Cache().SetStore(st)
	rep, stats, err := cold.Assert(e, sysFixed, testSuite(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Render(); got != want {
		t.Fatalf("cold-on-warm-store report differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if stats.Executed != 0 || stats.CacheHits != stats.Jobs {
		t.Fatalf("cold-on-warm-store executed=%d hits=%d jobs=%d, want all disk hits",
			stats.Executed, stats.CacheHits, stats.Jobs)
	}
	cs := cold.Cache().Stats()
	if cs.DiskHits == 0 || cs.DiskWrites != 0 {
		t.Fatalf("cold cache stats = %+v, want disk hits and no re-writes", cs)
	}
	// Promotion: a repeat run on the same scheduler stays in memory.
	if _, stats2, err := cold.Assert(e, sysFixed, testSuite(), Options{Workers: 4}); err != nil {
		t.Fatal(err)
	} else if stats2.Executed != 0 {
		t.Fatalf("promoted re-run executed %d jobs", stats2.Executed)
	}
	if cs2 := cold.Cache().Stats(); cs2.DiskHits != cs.DiskHits {
		t.Fatalf("promoted re-run went back to disk: %+v -> %+v", cs, cs2)
	}
}

// TestCorruptedStoreFallsBackToRecompute: with the store.read fault point
// corrupting every frame read, disk lookups fail their CRC, the scheduler
// recomputes everything, and the report stays byte-identical. Because the
// plan is armed, the recomputed results must NOT be written back — the
// store file is byte-identical before and after the poisoned run.
func TestCorruptedStoreFallsBackToRecompute(t *testing.T) {
	e := engineWithRule(t)
	base, _, err := New().Assert(e, sysFixed, testSuite(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := base.Render()

	st := openStoreT(t)
	warm := New()
	warm.Cache().SetStore(st)
	if _, _, err := warm.Assert(e, sysFixed, testSuite(), Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	before := storeLogBytes(t, st)
	if len(before) == 0 {
		t.Fatal("warm run left an empty store")
	}

	faultinject.Arm(faultinject.NewPlan(7).Set(store.FaultPointRead, faultinject.Corrupt))
	defer faultinject.Disarm()
	cold := New()
	cold.Cache().SetStore(st)
	rep, stats, err := cold.Assert(e, sysFixed, testSuite(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Disarm()
	if got := rep.Render(); got != want {
		t.Fatalf("poisoned-store report differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if stats.Executed != stats.Jobs {
		t.Fatalf("poisoned store served %d cache hits, want full recompute", stats.CacheHits)
	}
	cs := cold.Cache().Stats()
	if cs.DiskHits != 0 || cs.DiskMisses == 0 {
		t.Fatalf("poisoned cache stats = %+v, want only disk misses", cs)
	}
	after := storeLogBytes(t, st)
	if string(before) != string(after) {
		t.Fatalf("poisoned run mutated the store: %d bytes -> %d bytes", len(before), len(after))
	}
	ss := st.Stats()
	if ss.Corruptions == 0 {
		t.Fatalf("store stats = %+v, want detected corruptions", ss)
	}
	if ss.ArmedSkips == 0 {
		t.Fatalf("store stats = %+v, want armed puts skipped", ss)
	}
}

// TestStoreDisabledUnchanged: with no store attached the disk counters stay
// zero and behavior matches the store-less baseline exactly.
func TestStoreDisabledUnchanged(t *testing.T) {
	e := engineWithRule(t)
	s := New()
	rep, stats, err := s.Assert(e, sysFixed, testSuite(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := New().Assert(e, sysFixed, testSuite(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Render() != base.Render() {
		t.Fatal("store-disabled report differs from baseline")
	}
	if stats.Executed != stats.Jobs {
		t.Fatalf("store-disabled cold run executed=%d jobs=%d", stats.Executed, stats.Jobs)
	}
	cs := s.Cache().Stats()
	if cs.DiskHits != 0 || cs.DiskMisses != 0 || cs.DiskWrites != 0 {
		t.Fatalf("disk counters moved without a store: %+v", cs)
	}
}
