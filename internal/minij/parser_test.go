package minij

import (
	"strings"
	"testing"
)

const sampleProgram = `
class Session {
	bool closing;
	int ttl;
	string owner;

	bool isClosing() {
		return closing;
	}

	void close() {
		closing = true;
	}
}

class SessionManager {
	map sessions;

	void init() {
		sessions = newMap();
	}

	Session find(string id) {
		if (sessions.has(id)) {
			return sessions.get(id);
		}
		return null;
	}

	bool touch(string id, int t) {
		Session s = find(id);
		if (s == null || s.isClosing()) {
			return false;
		}
		s.ttl = s.ttl + t;
		return true;
	}

	static int add(int a, int b) {
		return a + b;
	}
}
`

func mustParseAndCheck(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Check(prog); err != nil {
		t.Fatalf("Check: %v", err)
	}
	return prog
}

func TestParseSampleProgram(t *testing.T) {
	prog := mustParseAndCheck(t, sampleProgram)
	if len(prog.Classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(prog.Classes))
	}
	sess := prog.Class("Session")
	if sess == nil {
		t.Fatal("class Session not found")
	}
	if len(sess.Fields) != 3 {
		t.Errorf("Session fields = %d, want 3", len(sess.Fields))
	}
	if f := sess.Field("ttl"); f == nil || f.Type.Kind != TypeInt {
		t.Errorf("ttl field = %+v, want int", f)
	}
	m := prog.Method("SessionManager", "touch")
	if m == nil {
		t.Fatal("SessionManager.touch not found")
	}
	if m.Static {
		t.Error("touch should not be static")
	}
	if len(m.Params) != 2 {
		t.Errorf("touch params = %d, want 2", len(m.Params))
	}
	if add := prog.Method("SessionManager", "add"); add == nil || !add.Static {
		t.Error("add should be static")
	}
}

func TestStatementIDsAreDense(t *testing.T) {
	prog := mustParseAndCheck(t, sampleProgram)
	n := prog.NumStmts()
	if n == 0 {
		t.Fatal("no statements")
	}
	seen := make([]bool, n)
	for _, m := range prog.Methods() {
		WalkStmts(m.Body, func(s Stmt) {
			id := s.ID()
			if id < 0 || id >= n {
				t.Fatalf("stmt ID %d out of range [0,%d)", id, n)
			}
			if seen[id] {
				t.Fatalf("duplicate stmt ID %d", id)
			}
			seen[id] = true
			if prog.StmtByID(id) != s {
				t.Fatalf("StmtByID(%d) mismatch", id)
			}
			if prog.MethodOf(id) != m {
				t.Fatalf("MethodOf(%d) = %v, want %s", id, prog.MethodOf(id), m.FullName())
			}
		})
	}
	for id, ok := range seen {
		if !ok {
			t.Errorf("stmt ID %d unassigned", id)
		}
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
class C {
	int loops(list xs) {
		int total = 0;
		for (int i = 0; i < 10; i = i + 1) {
			total = total + i;
		}
		for (x in xs) {
			total = total + len(str(x));
		}
		while (total > 100) {
			total = total - 1;
			if (total == 50) {
				break;
			} else {
				continue;
			}
		}
		return total;
	}

	void exceptions() {
		try {
			throw "boom";
		} catch (e) {
			log(e);
		}
	}

	void locks(map m) {
		synchronized (m) {
			ioWrite("snapshot", m.size());
		}
	}
}
`
	prog := mustParseAndCheck(t, src)
	m := prog.Method("C", "loops")
	var fors, foreaches, whiles, ifs int
	WalkStmts(m.Body, func(s Stmt) {
		switch s.(type) {
		case *For:
			fors++
		case *ForEach:
			foreaches++
		case *While:
			whiles++
		case *If:
			ifs++
		}
	})
	if fors != 1 || foreaches != 1 || whiles != 1 || ifs != 1 {
		t.Errorf("control counts: for=%d foreach=%d while=%d if=%d", fors, foreaches, whiles, ifs)
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `
class C {
	int classify(int x) {
		if (x < 0) {
			return -1;
		} else if (x == 0) {
			return 0;
		} else {
			return 1;
		}
	}
}
`
	prog := mustParseAndCheck(t, src)
	m := prog.Method("C", "classify")
	first, ok := m.Body.Stmts[0].(*If)
	if !ok {
		t.Fatalf("first stmt is %T, want *If", m.Body.Stmts[0])
	}
	second, ok := first.Else.(*If)
	if !ok {
		t.Fatalf("else branch is %T, want *If", first.Else)
	}
	if _, ok := second.Else.(*Block); !ok {
		t.Fatalf("final else is %T, want *Block", second.Else)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `
class C {
	bool f(int a, int b, bool p, bool q) {
		return p || q && a + b * 2 < 10;
	}
}
`
	prog := mustParseAndCheck(t, src)
	m := prog.Method("C", "f")
	ret := m.Body.Stmts[0].(*Return)
	top, ok := ret.Value.(*Binary)
	if !ok || top.Op != "||" {
		t.Fatalf("top op = %v, want ||", ret.Value)
	}
	and, ok := top.Y.(*Binary)
	if !ok || and.Op != "&&" {
		t.Fatalf("right of || = %v, want &&", top.Y)
	}
	cmp, ok := and.Y.(*Binary)
	if !ok || cmp.Op != "<" {
		t.Fatalf("right of && = %v, want <", and.Y)
	}
	if got := CanonExpr(cmp.X); got != "a + b * 2" {
		t.Errorf("left of < = %q, want %q", got, "a + b * 2")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`class`, "expected identifier"},
		{`class A { int`, "expected identifier"},
		{`class A { static int x; }`, "fields may not be static"},
		{`class A { void x; }`, "fields may not have void type"},
		{`class A { void m() { 1 = 2; } }`, "left side of assignment"},
		{`class A { void m() { if x { } } }`, `expected "("`},
		{`class A { void m() { return 1 } }`, `expected ";"`},
		{`class A { void m() { x.; } }`, "expected identifier"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`class A { void m() { x = 1; } }`, "undefined variable"},
		{`class A { void m() { int x = 1; int x = 2; } }`, "redeclaration"},
		{`class A { void m() { foo(); } }`, "undefined function"},
		{`class A { void m() { log(1, 2); } }`, "want 1"},
		{`class A { int f; void m() { bool b = f; } }`, "cannot initialize"},
		{`class A { void m() { if (1) { } } }`, "condition must be bool"},
		{`class A { void m(B b) { } }`, "unknown class"},
		{`class A { static void m() { n(); } void n() { } }`, "calls instance method"},
		{`class A { void m() { return 1; } }`, "void method"},
		{`class A { int m() { return; } }`, "missing return value"},
		{`class A { void m(A a) { a.nope(); } }`, "no method"},
		{`class A { void m(A a) { int x = a.f; } }`, "no field"},
		{`class A { void m() { throw 3; } }`, "throw requires a string"},
		{`class A { void m() { synchronized (1) { } } }`, "synchronized requires a reference"},
		{`class A { void m(list xs) { xs.put(1, 2); } }`, "no method"},
		{`class A { void m() { A a = new A(1); } }`, "no init method"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): unexpected parse error %v", c.src, err)
			continue
		}
		err = Check(prog)
		if err == nil {
			t.Errorf("Check(%q): want error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Check(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestResolveCallKinds(t *testing.T) {
	src := `
class Util {
	static int twice(int x) {
		return x * 2;
	}
}

class C {
	int n;

	int helper() {
		return n;
	}

	void m(list xs) {
		int a = helper();
		int b = Util.twice(a);
		xs.add(b);
		log(b);
	}
}
`
	prog := mustParseAndCheck(t, src)
	m := prog.Method("C", "m")
	kinds := map[string]CallKind{}
	WalkExprs(m.Body, func(e Expr) {
		if c, ok := e.(*Call); ok {
			kinds[c.Name] = c.Kind
		}
	})
	want := map[string]CallKind{
		"helper": CallSelf,
		"twice":  CallStatic,
		"add":    CallInstance,
		"log":    CallBuiltin,
	}
	for name, k := range want {
		if kinds[name] != k {
			t.Errorf("call %s kind = %v, want %v", name, kinds[name], k)
		}
	}
}
