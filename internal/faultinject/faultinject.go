// Package faultinject is a seeded, deterministic fault injector for the
// assertion runtime. Hook points in the solver, interpreter, path walker,
// job runner, and snapshot cache consult the armed Plan by point name and
// fail in a prescribed way: a forced panic, a budget-exhaustion error, a
// job that never finishes (slow), or a corrupted cache entry.
//
// Rules are sticky: a matching point fires on every visit, never "the Nth
// time", so an injected fault hits the same logical work items regardless
// of worker count or scheduling order — the property the chaos experiment
// leans on to demand byte-identical reports at workers=1 and workers=8.
// The one sanctioned exception is SetAfter, which arms a rule only from
// the point's Nth visit on (and is sticky past it); it exists for the
// crash-recovery campaign, where "die on the Nth append" is what varies
// the torn state across rounds, and is deterministic exactly when the
// point is visited from a single goroutine (true for the store's writer).
//
// The injector is process-global but off by default; hot paths guard their
// hook with Armed() so an unarmed run pays one atomic load. Production
// binaries never arm a plan — only the chaos experiment and robustness
// tests do.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the failure mode a rule injects at its point.
type Kind int

// Failure modes. Each hook point documents which kinds it honors;
// unsupported kinds at a point are ignored.
const (
	// Panic forces a runtime panic at the point (containment check).
	Panic Kind = iota
	// Budget forces the point's budget-exhaustion error (smt.ErrBudget,
	// interp.ErrStepBudget, ...).
	Budget
	// Slow blocks the point until its job context expires (timeout check).
	Slow
	// Corrupt mutates the value the point is about to hand out (e.g. a
	// snapshot cache entry), so integrity checks downstream must catch it.
	Corrupt
	// Crash kills the whole process at the point, mid-operation, the way a
	// power cut or OOM kill would (crash-recovery check). Hook points that
	// honor it first leave behind whatever partial state a real crash at
	// that spot leaves (a half-written frame, an unsynced file), then call
	// CrashNow. Only ever armed in a spawned helper process.
	Crash
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Budget:
		return "budget"
	case Slow:
		return "slow"
	case Corrupt:
		return "corrupt"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// rule is one point→failure binding: the kind to inject, armed from the
// point's (skip+1)th visit on (skip 0 = every visit, the sticky default).
type rule struct {
	kind Kind
	skip int
}

// Plan is one seeded injection plan: a set of sticky point→kind rules plus
// a hit log. A point ending in '*' matches every point with that prefix
// (longest prefix wins; an exact rule always beats a wildcard).
type Plan struct {
	// Seed labels the plan and feeds Pick; it does not randomize rule
	// matching, which is fully deterministic.
	Seed int64

	mu         sync.Mutex
	rules      map[string]rule
	hits       map[string]int
	visits     map[string]int
	storeScope bool
}

// NewPlan returns an empty plan with the given seed.
func NewPlan(seed int64) *Plan {
	return &Plan{Seed: seed, rules: map[string]rule{}, hits: map[string]int{}, visits: map[string]int{}}
}

// Set adds a sticky rule and returns the plan for chaining.
func (p *Plan) Set(point string, k Kind) *Plan { return p.SetAfter(point, k, 0) }

// SetAfter adds a rule that stays dormant for the point's first skip
// visits and fires sticky from visit skip+1 on. The crash-recovery
// campaign uses it to vary where in the write stream the process dies;
// determinism requires the point to be visited from one goroutine.
func (p *Plan) SetAfter(point string, k Kind, skip int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules[point] = rule{kind: k, skip: skip}
	return p
}

// ScopeStore marks the plan as targeting the storage layer itself rather
// than the computation above it. The compute-side "never trust results
// produced under injection" guards — store.Put dropping writes, the
// solver cache bypass — stand down for a store-scoped plan: the values
// being persisted are computed cleanly, and the injected faults live in
// the store under test, whose own CRC/recovery machinery is what the run
// is exercising. Only arm a store-scoped plan whose rules all target
// store.* points.
func (p *Plan) ScopeStore() *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.storeScope = true
	return p
}

// match resolves point against the rules: exact first, then the longest
// matching '*' wildcard.
func (p *Plan) match(point string) (rule, bool) {
	if r, ok := p.rules[point]; ok {
		return r, true
	}
	bestLen := -1
	var best rule
	for pat, r := range p.rules {
		if !strings.HasSuffix(pat, "*") {
			continue
		}
		prefix := pat[:len(pat)-1]
		if strings.HasPrefix(point, prefix) && len(prefix) > bestLen {
			bestLen = len(prefix)
			best = r
		}
	}
	return best, bestLen >= 0
}

// Hits returns a copy of the hit counts, keyed by the concrete point names
// that fired (not the wildcard patterns).
func (p *Plan) Hits() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.hits))
	for k, v := range p.hits {
		out[k] = v
	}
	return out
}

// HitCount returns the total number of injected faults so far.
func (p *Plan) HitCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, v := range p.hits {
		n += v
	}
	return n
}

// HitLog renders the hit counts deterministically ("point×n, ...").
func (p *Plan) HitLog() string {
	hits := p.Hits()
	keys := make([]string, 0, len(hits))
	for k := range hits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s×%d", k, hits[k])
	}
	return strings.Join(parts, ", ")
}

// active is the armed plan, nil when injection is off.
var active atomic.Pointer[Plan]

// Arm makes p the process-wide active plan. Arm the plan only around the
// run under test and Disarm afterwards; arming is not reference counted.
func Arm(p *Plan) { active.Store(p) }

// Disarm turns injection off.
func Disarm() { active.Store(nil) }

// Armed reports whether a plan is active. Hook points on hot paths call
// this before building their point name, so the unarmed cost is one atomic
// load.
func Armed() bool { return active.Load() != nil }

// StoreScoped reports whether the active plan is scoped to the storage
// layer (Plan.ScopeStore). Compute-side guards that suppress caching or
// persistence while armed treat a store-scoped plan as unarmed.
func StoreScoped() bool {
	p := active.Load()
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.storeScope
}

// At consults the active plan for point. When a rule matches and its
// skip-count has elapsed, the hit is recorded and the rule's kind returned
// with ok=true. With no armed plan, no matching rule, or a rule still
// dormant (SetAfter), ok is false and the caller proceeds normally.
func At(point string) (Kind, bool) {
	p := active.Load()
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.match(point)
	if !ok {
		return 0, false
	}
	p.visits[point]++
	if p.visits[point] <= r.skip {
		return 0, false
	}
	p.hits[point]++
	return r.kind, true
}

// CrashExitCode is the exit status crashNow kills the process with — far
// from the codes tests and the CLI use, so a spawning parent can tell an
// injected crash from an ordinary failure.
const CrashExitCode = 86

// crashFn is what a firing Crash rule ultimately calls; tests may swap it
// via SetCrashFn to observe the crash instead of dying.
var crashFn atomic.Pointer[func(point string)]

// SetCrashFn replaces the process-kill behavior of Crash rules (tests
// only). Passing nil restores the default hard exit.
func SetCrashFn(f func(point string)) {
	if f == nil {
		crashFn.Store(nil)
		return
	}
	crashFn.Store(&f)
}

// CrashNow terminates the process the way a firing Crash rule demands.
// Hook points call it after laying down the partial state a real crash at
// their spot would leave. The default is a hard os.Exit — no deferred
// functions, no flushes — which is the point.
func CrashNow(point string) {
	if f := crashFn.Load(); f != nil {
		(*f)(point)
		return
	}
	fmt.Fprintf(os.Stderr, "faultinject: crash at %s\n", point)
	os.Exit(CrashExitCode)
}

// Pick deterministically selects one of candidates from the seed and a
// salt label: the same (seed, salt, candidates) always yields the same
// choice, independent of candidate order. Empty candidates yield "".
func Pick(seed int64, salt string, candidates []string) string {
	if len(candidates) == 0 {
		return ""
	}
	sorted := append([]string(nil), candidates...)
	sort.Strings(sorted)
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s", seed, salt)
	return sorted[h.Sum64()%uint64(len(sorted))]
}
