package concolic

import (
	"strings"

	"lisa/internal/interp"
	"lisa/internal/smt"
)

// Tri is a three-valued truth: a concrete evaluation may be unknown when a
// path does not resolve in the runtime state.
type Tri int

// Tri values.
const (
	TriUnknown Tri = iota
	TriFalse
	TriTrue
)

// String renders the tri-state.
func (t Tri) String() string {
	switch t {
	case TriTrue:
		return "true"
	case TriFalse:
		return "false"
	}
	return "unknown"
}

// triOf converts a bool.
func triOf(b bool) Tri {
	if b {
		return TriTrue
	}
	return TriFalse
}

// RootResolver maps a root variable name to its runtime value.
type RootResolver func(root string) (interp.Value, bool)

// FrameResolver resolves roots in an interpreter frame (local, parameter,
// or receiver field).
func FrameResolver(fr *interp.Frame) RootResolver {
	return func(root string) (interp.Value, bool) {
		if v, ok := fr.Lookup(root); ok {
			return v, true
		}
		if fr.This != nil {
			if v, ok := fr.This.Fields[root]; ok {
				return v, true
			}
		}
		return nil, false
	}
}

// resolvePath walks a dotted path through the runtime state: the root
// resolves through the resolver, the remaining segments through object
// fields. The normalized vocabulary produced by the translator is already
// field-based, so no getter evaluation is needed.
func resolvePath(path string, resolve RootResolver) (interp.Value, bool) {
	segs := strings.Split(path, ".")
	cur, ok := resolve(segs[0])
	if !ok {
		return nil, false
	}
	for _, seg := range segs[1:] {
		obj, isObj := cur.(*interp.Object)
		if !isObj {
			return nil, false
		}
		v, ok := obj.Fields[seg]
		if !ok {
			return nil, false
		}
		cur = v
	}
	return cur, true
}

// EvalConcrete evaluates a predicate formula against the runtime state of a
// frame — the "runtime invariant monitor" view of a contract. Paths that do
// not resolve yield unknown, which propagates through the connectives in
// three-valued logic.
func EvalConcrete(f smt.Formula, fr *interp.Frame) Tri {
	return EvalConcreteWith(f, FrameResolver(fr))
}

// EvalConcreteWith evaluates a predicate formula resolving roots through an
// arbitrary resolver (e.g. values captured at an earlier observation point;
// heap objects stay live, so field reads reflect the current state).
func EvalConcreteWith(f smt.Formula, resolve RootResolver) Tri {
	switch n := f.(type) {
	case *smt.Const:
		return triOf(n.Value)
	case *smt.AtomF:
		return evalAtomConcrete(n.Atom, resolve)
	case *smt.Not:
		switch EvalConcreteWith(n.X, resolve) {
		case TriTrue:
			return TriFalse
		case TriFalse:
			return TriTrue
		}
		return TriUnknown
	case *smt.And:
		out := TriTrue
		for _, x := range n.Xs {
			switch EvalConcreteWith(x, resolve) {
			case TriFalse:
				return TriFalse
			case TriUnknown:
				out = TriUnknown
			}
		}
		return out
	case *smt.Or:
		out := TriFalse
		for _, x := range n.Xs {
			switch EvalConcreteWith(x, resolve) {
			case TriTrue:
				return TriTrue
			case TriUnknown:
				out = TriUnknown
			}
		}
		return out
	}
	return TriUnknown
}

func evalAtomConcrete(a smt.Atom, resolve RootResolver) Tri {
	switch a.Kind {
	case smt.AtomBool:
		v, ok := resolvePath(a.Path, resolve)
		if !ok {
			return TriUnknown
		}
		b, isBool := v.(interp.Bool)
		if !isBool {
			return TriUnknown
		}
		return triOf(bool(b))
	case smt.AtomNull:
		v, ok := resolvePath(a.Path, resolve)
		if !ok {
			return TriUnknown
		}
		return triOf(interp.IsNull(v))
	case smt.AtomCmpC:
		v, ok := resolvePath(a.Path, resolve)
		if !ok {
			return TriUnknown
		}
		i, isInt := v.(interp.Int)
		if !isInt {
			return TriUnknown
		}
		return triOf(cmpInts(int64(i), a.Op, a.IntVal))
	case smt.AtomCmpV:
		v1, ok1 := resolvePath(a.Path, resolve)
		v2, ok2 := resolvePath(a.Path2, resolve)
		if !ok1 || !ok2 {
			return TriUnknown
		}
		i1, isInt1 := v1.(interp.Int)
		i2, isInt2 := v2.(interp.Int)
		if !isInt1 || !isInt2 {
			return TriUnknown
		}
		return triOf(cmpInts(int64(i1), a.Op, int64(i2)))
	case smt.AtomStrEq:
		v, ok := resolvePath(a.Path, resolve)
		if !ok {
			return TriUnknown
		}
		s, isStr := v.(interp.Str)
		if !isStr {
			return TriUnknown
		}
		eq := string(s) == a.StrVal
		if a.Op == smt.OpNe {
			return triOf(!eq)
		}
		return triOf(eq)
	}
	return TriUnknown
}

func cmpInts(x int64, op smt.CmpOp, y int64) bool {
	switch op {
	case smt.OpEq:
		return x == y
	case smt.OpNe:
		return x != y
	case smt.OpLt:
		return x < y
	case smt.OpLe:
		return x <= y
	case smt.OpGt:
		return x > y
	case smt.OpGe:
		return x >= y
	}
	return false
}
