// Package infer extracts low-level semantics from failure tickets. It is
// the deterministic stand-in for the LLM in the paper's pipeline: given the
// same bundle the paper's prompt receives (failure description, code patch,
// post-patch source), it walks the same reasoning steps — identify the root
// cause, state the high-level semantic, state the implementation-local
// invariant, and translate it into a (condition statement, target
// statement) pair.
//
// The extraction is structural: the patch analyzer aligns the buggy and
// fixed ASTs, finds guards that the fix introduced or strengthened, works
// out which operation each guard protects, and emits the protection
// predicate as a contract over the operation's operands. A seeded
// StochasticInferencer wraps the analyzer to reproduce the §5 reliability
// study (non-determinism and hallucination), and CrossCheck implements the
// defence the paper proposes: validating mined semantics against actual
// system behavior.
package infer

import (
	"fmt"
	"sort"
	"strings"

	"lisa/internal/concolic"
	"lisa/internal/contract"
	"lisa/internal/minij"
	"lisa/internal/program"
	"lisa/internal/smt"
	"lisa/internal/ticket"
)

// Result is the structured output of one inference run — the analogue of
// the JSON object the paper's prompt requests.
type Result struct {
	Ticket string
	// HighLevel is the system-level behavioral property.
	HighLevel string
	// Semantics are the extracted low-level semantics in checkable form.
	Semantics []*contract.Semantic
	// Reasoning records the derivation steps, one entry per step.
	Reasoning []string
}

// Inferencer produces semantics from a ticket bundle.
type Inferencer interface {
	Infer(tk *ticket.Ticket) (*Result, error)
}

// PatchAnalyzer is the deterministic inference engine.
type PatchAnalyzer struct {
	// Generalize enables pattern-level abstraction of site-specific rules
	// (e.g. lifting "no ioWrite inside serializeNode's synchronized block"
	// to "no blocking I/O inside any synchronized block", Figure 6).
	Generalize bool
}

// identityEnv resolves every identifier to itself (inference translates
// guards syntactically; constants are not tracked across the method here).
// It carries the resolved program so getter normalization applies to mined
// conditions exactly as it does to recorded path conditions.
type identityEnv struct{ prog *minij.Program }

func (identityEnv) PathOf(name string) (string, bool)        { return name, true }
func (identityEnv) ConstOf(string) (concolic.ConstVal, bool) { return concolic.ConstVal{}, false }
func (e identityEnv) Program() *minij.Program                { return e.prog }

// Infer implements Inferencer.
func (pa *PatchAnalyzer) Infer(tk *ticket.Ticket) (*Result, error) {
	buggy, err := compile(tk.BuggySource)
	if err != nil {
		return nil, fmt.Errorf("infer %s: buggy source: %w", tk.ID, err)
	}
	fixed, err := compile(tk.FixedSource)
	if err != nil {
		return nil, fmt.Errorf("infer %s: fixed source: %w", tk.ID, err)
	}
	res := &Result{Ticket: tk.ID}
	res.Reasoning = append(res.Reasoning,
		fmt.Sprintf("Step 1 (root cause): ticket %s reports %q; comparing the buggy and patched versions.", tk.ID, tk.Title))

	changed := changedMethods(buggy, fixed)
	if len(changed) == 0 {
		res.Reasoning = append(res.Reasoning, "No method-level changes detected; nothing to infer.")
		return res, nil
	}
	var names []string
	for _, m := range changed {
		names = append(names, m.FullName())
	}
	res.Reasoning = append(res.Reasoning,
		fmt.Sprintf("Changed methods: %s.", strings.Join(names, ", ")))

	seen := map[string]bool{}
	for _, m := range changed {
		for _, cand := range extractGuards(buggy, fixed, m) {
			sem, reasoning := pa.buildSemantic(tk, fixed, m, cand)
			if sem == nil {
				continue
			}
			key := sem.Target.Callee + "|" + sem.Pre.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			if err := sem.Validate(); err != nil {
				res.Reasoning = append(res.Reasoning, fmt.Sprintf("Discarded candidate: %v.", err))
				continue
			}
			res.Semantics = append(res.Semantics, sem)
			res.Reasoning = append(res.Reasoning, reasoning...)
		}
	}
	if pa.Generalize {
		if sems, reasoning := generalizeBlocking(tk, buggy, fixed); len(sems) > 0 {
			res.Semantics = append(res.Semantics, sems...)
			res.Reasoning = append(res.Reasoning, reasoning...)
		}
	}
	res.HighLevel = highLevelOf(tk, res.Semantics)
	res.Reasoning = append(res.Reasoning,
		fmt.Sprintf("Step 2 (high-level semantics): %s", res.HighLevel))
	return res, nil
}

// compile loads a ticket version through the shared snapshot cache:
// replaying the corpus re-infers from the same buggy/fixed pairs many
// times, and every pass after the first is a front-end cache hit.
func compile(src string) (*minij.Program, error) {
	snap, err := program.Load(src)
	if err != nil {
		return nil, err
	}
	return snap.Program(), nil
}

// changedMethods returns the fixed-version methods whose bodies differ from
// their buggy-version counterparts (including newly added methods).
func changedMethods(buggy, fixed *minij.Program) []*minij.Method {
	var out []*minij.Method
	for _, fm := range fixed.Methods() {
		bm := buggy.Method(fm.Class.Name, fm.Name)
		if bm == nil || methodText(bm) != methodText(fm) {
			out = append(out, fm)
		}
	}
	return out
}

func methodText(m *minij.Method) string {
	var parts []string
	minij.WalkStmts(m.Body, func(s minij.Stmt) {
		parts = append(parts, minij.CanonStmt(s))
	})
	return strings.Join(parts, "\n")
}

// guardCandidate is one guard the fix introduced or strengthened.
type guardCandidate struct {
	ifStmt *minij.If
	// rejection is true when the then-branch terminates (throw/return/
	// continue/break): the protection predicate is the guard's negation
	// and the protected operations follow the guard.
	rejection bool
	// protectedCalls are the candidate target operations, in order.
	protectedCalls []*minij.Call
	// pre is the protection predicate over local variable paths.
	pre smt.Formula
}

// extractGuards finds the new or strengthened guards of a changed method.
func extractGuards(buggy, fixed *minij.Program, m *minij.Method) []guardCandidate {
	// Conditions already present in the buggy version of this method.
	oldConds := map[string]bool{}
	if bm := buggy.Method(m.Class.Name, m.Name); bm != nil {
		minij.WalkStmts(bm.Body, func(s minij.Stmt) {
			if n, ok := s.(*minij.If); ok {
				oldConds[minij.CanonExpr(n.Cond)] = true
			}
		})
	}
	var out []guardCandidate
	// Visit every block exactly once; within each block, pair guards with
	// the statements that follow them.
	minij.WalkStmts(m.Body, func(s minij.Stmt) {
		b, ok := s.(*minij.Block)
		if !ok {
			return
		}
		for i, st := range b.Stmts {
			first, isIf := st.(*minij.If)
			if !isIf {
				continue
			}
			// Walk the whole else-if ladder: a guard strengthened in any
			// rung protects the statements after the ladder.
			for ladder := first; ladder != nil; {
				if !oldConds[minij.CanonExpr(ladder.Cond)] {
					if cand, valid := classifyGuard(fixed, ladder, b.Stmts[i+1:]); valid {
						out = append(out, cand)
					}
				}
				next, chained := ladder.Else.(*minij.If)
				if !chained {
					break
				}
				ladder = next
			}
		}
	})
	return out
}

// classifyGuard determines the protection shape of a fresh guard,
// translating its condition under the resolved program (for getter
// normalization).
func classifyGuard(prog *minij.Program, ifStmt *minij.If, following []minij.Stmt) (guardCandidate, bool) {
	cand := guardCandidate{ifStmt: ifStmt}
	f, ok := concolic.Translate(ifStmt.Cond, identityEnv{prog: prog})
	if !ok {
		return cand, false
	}
	if terminates(ifStmt.Then) {
		// Rejection guard: "if (bad) throw; protectedOp(...);"
		cand.rejection = true
		cand.pre = smt.NNF(smt.NewNot(f))
		for _, s := range following {
			cand.protectedCalls = append(cand.protectedCalls, allCallsIn(s)...)
		}
	} else {
		// Wrapping guard: "if (good) { protectedOp(...); }"
		cand.pre = smt.NNF(f)
		for _, s := range ifStmt.Then.Stmts {
			cand.protectedCalls = append(cand.protectedCalls, allCallsIn(s)...)
		}
	}
	if len(cand.protectedCalls) == 0 {
		return cand, false
	}
	return cand, true
}

// terminates reports whether a block always exits the enclosing control
// flow (ignoring trailing logs).
func terminates(b *minij.Block) bool {
	for _, s := range b.Stmts {
		switch s.(type) {
		case *minij.Throw, *minij.Return, *minij.Break, *minij.Continue:
			return true
		}
	}
	return false
}

func allCallsIn(s minij.Stmt) []*minij.Call {
	var out []*minij.Call
	minij.WalkExprs(s, func(e minij.Expr) {
		if c, ok := e.(*minij.Call); ok {
			out = append(out, c)
		}
	})
	return out
}

// buildSemantic converts a guard candidate into a validated contract,
// selecting the protected operation whose operands bind the guard's
// variables.
func (pa *PatchAnalyzer) buildSemantic(tk *ticket.Ticket, fixed *minij.Program, m *minij.Method, cand guardCandidate) (*contract.Semantic, []string) {
	roots := smt.Roots(cand.pre)
	type scored struct {
		call  *minij.Call
		bind  map[string]int
		bound map[string]bool
		score int
		order int
	}
	var best *scored
	for order, call := range cand.protectedCalls {
		if call.Kind == minij.CallBuiltin && !minij.IsBlockingBuiltin(call.Name) {
			continue // log/str/etc. are not semantic operations
		}
		bind := map[string]int{}
		bound := map[string]bool{}
		if call.Recv != nil {
			if p, ok := contract.ExprPath(call.Recv); ok && roots[smt.Root(p)] {
				bind[smt.Root(p)] = contract.ReceiverSlot
				bound[smt.Root(p)] = true
			}
		}
		for i, a := range call.Args {
			if p, ok := contract.ExprPath(a); ok && roots[smt.Root(p)] {
				r := smt.Root(p)
				if _, dup := bind[r]; !dup {
					bind[r] = i
					bound[r] = true
				}
			}
		}
		if len(bound) == 0 {
			continue
		}
		s := &scored{call: call, bind: bind, bound: bound, score: len(bound)*10 - order, order: order}
		if best == nil || s.score > best.score {
			best = s
		}
	}
	if best == nil {
		return nil, nil
	}
	callee := contract.CalleeName(fixed, m, best.call)
	if callee == "" {
		return nil, nil
	}
	// Drop conjuncts whose roots could not be bound to operands (the
	// paper's placeholder-to-variable mapping succeeds only for operands).
	pre, dropped := restrictToRoots(cand.pre, best.bound)
	if pre == nil {
		return nil, nil
	}
	sem := &contract.Semantic{
		ID:          semanticID(tk.ID, callee),
		Kind:        contract.StateKind,
		Origin:      []string{tk.ID},
		Target:      contract.TargetPattern{Callee: callee, Bind: best.bind},
		Pre:         pre,
		Description: fmt.Sprintf("No caller may invoke %s unless %s.", callee, pre),
	}
	reasoning := []string{
		fmt.Sprintf("Step 3 (low-level semantics): the patch to %s guards %s with %q.",
			m.FullName(), minij.CanonExpr(best.call), cand.pre),
		fmt.Sprintf("Step 4 (checkable form): condition %q must hold at every call to %s (slots %v).",
			pre, callee, bindSummary(best.bind)),
	}
	if len(dropped) > 0 {
		reasoning = append(reasoning, fmt.Sprintf(
			"Dropped conjuncts over unbindable variables: %s.", strings.Join(dropped, ", ")))
	}
	return sem, reasoning
}

func bindSummary(bind map[string]int) []string {
	var out []string
	for slot, idx := range bind {
		if idx == contract.ReceiverSlot {
			out = append(out, slot+"=receiver")
		} else {
			out = append(out, fmt.Sprintf("%s=arg%d", slot, idx))
		}
	}
	sort.Strings(out)
	return out
}

// restrictToRoots keeps only the parts of an NNF formula whose roots are
// all bound, returning the pruned formula and the dropped fragments. A
// top-level conjunction prunes per conjunct; any other shape is kept or
// dropped atomically.
func restrictToRoots(f smt.Formula, bound map[string]bool) (smt.Formula, []string) {
	allBound := func(g smt.Formula) bool {
		for r := range smt.Roots(g) {
			if !bound[r] {
				return false
			}
		}
		return true
	}
	if and, ok := f.(*smt.And); ok {
		var keep []smt.Formula
		var dropped []string
		for _, x := range and.Xs {
			if allBound(x) {
				keep = append(keep, x)
			} else {
				dropped = append(dropped, x.String())
			}
		}
		if len(keep) == 0 {
			return nil, dropped
		}
		return smt.NewAnd(keep...), dropped
	}
	if allBound(f) {
		return f, nil
	}
	return nil, []string{f.String()}
}

func semanticID(ticketID, callee string) string {
	return strings.ToLower(ticketID) + "-" + strings.ToLower(strings.ReplaceAll(callee, ".", "-"))
}

// generalizeBlocking detects the Figure 6 pattern: the fix moved blocking
// I/O out of a synchronized block. It emits both the literal rule (scoped
// to the fixed method) and the generalized system-wide rule; the ablation
// compares their reach.
func generalizeBlocking(tk *ticket.Ticket, buggy, fixed *minij.Program) ([]*contract.Semantic, []string) {
	buggyViolations := contract.NoBlockingInSync{}.Check(buggy)
	if len(buggyViolations) == 0 {
		return nil, nil
	}
	fixedViolations := contract.NoBlockingInSync{}.Check(fixed)
	if len(fixedViolations) >= len(buggyViolations) {
		return nil, nil
	}
	// Methods whose violations the fix removed.
	fixedSet := map[string]int{}
	for _, v := range fixedViolations {
		fixedSet[v.Method.FullName()]++
	}
	removed := map[string]bool{}
	for _, v := range buggyViolations {
		name := v.Method.FullName()
		if fixedSet[name] > 0 {
			fixedSet[name]--
			continue
		}
		removed[name] = true
	}
	if len(removed) == 0 {
		return nil, nil
	}
	var methods []string
	for m := range removed {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	literal := &contract.Semantic{
		ID:          strings.ToLower(tk.ID) + "-no-blocking-in-sync-literal",
		Kind:        contract.StructuralKind,
		Origin:      []string{tk.ID},
		Structural:  contract.NoBlockingInSync{Only: removed},
		Description: fmt.Sprintf("No blocking I/O inside the synchronized blocks of %s.", strings.Join(methods, ", ")),
	}
	general := &contract.Semantic{
		ID:          strings.ToLower(tk.ID) + "-no-blocking-in-sync",
		Kind:        contract.StructuralKind,
		Origin:      []string{tk.ID},
		Structural:  contract.NoBlockingInSync{},
		Description: "No blocking I/O within synchronized blocks, anywhere in the system.",
	}
	reasoning := []string{
		fmt.Sprintf("Step 3 (low-level semantics): the patch moved blocking I/O out of synchronized blocks in %s.",
			strings.Join(methods, ", ")),
		"Step 5 (generalization): the direct rule is specific to the patched function; abstracting to " +
			"the behavior class \"no blocking I/O within synchronized blocks\" captures the developer intent " +
			"and applies across code changes.",
	}
	return []*contract.Semantic{literal, general}, reasoning
}

// highLevelOf synthesizes the high-level semantic statement.
func highLevelOf(tk *ticket.Ticket, sems []*contract.Semantic) string {
	if len(sems) == 0 {
		return fmt.Sprintf("Behavior reported in %s must not recur.", tk.ID)
	}
	return fmt.Sprintf("The system-level property behind %s (%s) must hold on every execution path, not only the one patched.",
		tk.ID, tk.Title)
}
