package server

import (
	"fmt"
	"net/http"
	"sync"
)

// Admission control: the daemon bounds how much interactive work runs at
// once (Config.MaxConcurrent) and how much may wait for a slot
// (Config.MaxQueue); past that it load-sheds instead of queueing without
// bound. Per-client fairness rides on the X-Lisa-Token request header:
// each token's in-flight count is capped by its QuotaClass, so one noisy
// CI runner exhausts its own quota (429 + Retry-After), not the daemon.
// /watch registration never queues — prewarm warmth is the first thing a
// saturated server sheds, interactive /gate and /assert traffic the last.
// Admission never reorders admitted work, so the byte-identity contract
// (package comment) is untouched: shedding changes who runs, never what an
// admitted run renders.

const (
	// DefaultMaxQueue bounds requests waiting for an admission slot when
	// Config.MaxQueue is zero but admission is enabled.
	DefaultMaxQueue = 16
	// retryAfterBaseSeconds seeds the Retry-After hint on overload
	// rejections; the hint grows with the queue depth.
	retryAfterBaseSeconds = 1
)

// QuotaClass is the per-client admission budget keyed by the X-Lisa-Token
// header. The zero value means unlimited.
type QuotaClass struct {
	// MaxConcurrent bounds this client's in-flight requests (0 = no cap).
	MaxConcurrent int `json:"max_concurrent"`
}

// AdmissionStats is the overload ledger exposed by /stats.
type AdmissionStats struct {
	// Enabled reports whether admission control is on (MaxConcurrent > 0).
	Enabled bool `json:"enabled"`
	// Admitted counts requests that got a slot (with or without waiting).
	Admitted uint64 `json:"admitted"`
	// Waited counts admitted requests that had to queue first.
	Waited uint64 `json:"waited"`
	// RejectedQuota counts 429s: the client's own class was exhausted.
	RejectedQuota uint64 `json:"rejected_quota"`
	// RejectedQueueFull counts 503s: server and queue both saturated.
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	// RejectedDraining counts queued requests evicted by Drain with 503.
	RejectedDraining uint64 `json:"rejected_draining"`
	// ShedWatch counts /watch registrations shed at saturation (the
	// breaker: warmth goes before interactive traffic).
	ShedWatch uint64 `json:"shed_watch"`
	// ActiveNow / QueuedNow are the instantaneous occupancy gauges.
	ActiveNow int `json:"active_now"`
	QueuedNow int `json:"queued_now"`
}

// admitDecision is what admission hands the HTTP guard for a rejected
// request: the status to send and the Retry-After hint (0 = no header).
type admitDecision struct {
	status     int
	retryAfter int
	err        error
}

// admission is the server's admission gate. A nil/disabled admission
// admits everything (the zero-config behavior every existing caller
// keeps).
type admission struct {
	enabled bool
	sem     chan struct{} // MaxConcurrent slots
	queue   chan struct{} // MaxQueue waiting slots
	drain   chan struct{} // closed by Server.Drain; evicts waiters

	quotas map[string]QuotaClass

	mu       sync.Mutex
	perToken map[string]int
	stats    AdmissionStats
}

func newAdmission(maxConcurrent, maxQueue int, quotas map[string]QuotaClass) *admission {
	a := &admission{
		drain:    make(chan struct{}),
		quotas:   quotas,
		perToken: map[string]int{},
	}
	if maxConcurrent <= 0 {
		return a // disabled: quotas still apply if configured
	}
	a.enabled = true
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	a.sem = make(chan struct{}, maxConcurrent)
	a.queue = make(chan struct{}, maxQueue)
	return a
}

// quotaFor resolves the client token to its class; unknown tokens get the
// "" (anonymous/default) class when one is configured, else no cap.
func (a *admission) quotaFor(token string) QuotaClass {
	if q, ok := a.quotas[token]; ok {
		return q
	}
	return a.quotas[""]
}

// reserveToken counts the request against its client quota; returns false
// (already rejected and counted) when the class is exhausted.
func (a *admission) reserveToken(token string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if q := a.quotaFor(token); q.MaxConcurrent > 0 && a.perToken[token] >= q.MaxConcurrent {
		a.stats.RejectedQuota++
		return false
	}
	a.perToken[token]++
	return true
}

func (a *admission) releaseToken(token string) {
	a.mu.Lock()
	if a.perToken[token] > 1 {
		a.perToken[token]--
	} else {
		delete(a.perToken, token)
	}
	a.mu.Unlock()
}

// drained reports whether Drain has begun (non-blocking).
func (a *admission) drained() bool {
	select {
	case <-a.drain:
		return true
	default:
		return false
	}
}

// saturated reports whether every concurrency slot is occupied — the
// signal the watcher's prewarm breaker sheds on.
func (a *admission) saturated() bool {
	if !a.enabled {
		return false
	}
	return len(a.sem) == cap(a.sem) || len(a.queue) > 0
}

// retryAfter is the backoff hint for an overload rejection: the deeper
// the queue, the longer the caller should stay away.
func (a *admission) retryAfter() int {
	if !a.enabled {
		return retryAfterBaseSeconds
	}
	return retryAfterBaseSeconds + len(a.queue)
}

// admit gates one request. queueable requests (interactive /gate and
// /assert) wait for a slot up to the queue bound; non-queueable ones
// (/watch) are shed immediately at saturation. On success the returned
// release must be called when the request finishes; on rejection release
// is nil and dec says what to send.
func (a *admission) admit(token string, queueable bool) (release func(), dec admitDecision) {
	if !a.reserveToken(token) {
		return nil, admitDecision{
			status:     http.StatusTooManyRequests,
			retryAfter: retryAfterBaseSeconds,
			err:        fmt.Errorf("client quota exhausted (token %q): retry later", token),
		}
	}
	if !a.enabled {
		a.mu.Lock()
		a.stats.Admitted++
		a.mu.Unlock()
		return func() { a.releaseToken(token) }, admitDecision{}
	}
	admitted := func() func() {
		a.mu.Lock()
		a.stats.Admitted++
		a.mu.Unlock()
		return func() {
			<-a.sem
			a.releaseToken(token)
		}
	}
	select {
	case a.sem <- struct{}{}:
		return admitted(), admitDecision{}
	default:
	}
	if !queueable {
		a.releaseToken(token)
		a.mu.Lock()
		a.stats.ShedWatch++
		a.mu.Unlock()
		return nil, admitDecision{
			status:     http.StatusServiceUnavailable,
			retryAfter: a.retryAfter(),
			err:        fmt.Errorf("server saturated; watch registration shed"),
		}
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.releaseToken(token)
		a.mu.Lock()
		a.stats.RejectedQueueFull++
		a.mu.Unlock()
		return nil, admitDecision{
			status:     http.StatusServiceUnavailable,
			retryAfter: a.retryAfter(),
			err:        fmt.Errorf("server overloaded: %d running, %d queued", cap(a.sem), cap(a.queue)),
		}
	}
	a.mu.Lock()
	a.stats.Waited++
	a.mu.Unlock()
	select {
	case a.sem <- struct{}{}:
		<-a.queue
		if a.drained() {
			// The slot freed during a drain: queued work is rejected, not
			// started, so drain terminates deterministically.
			<-a.sem
			a.releaseToken(token)
			a.mu.Lock()
			a.stats.RejectedDraining++
			a.mu.Unlock()
			return nil, admitDecision{
				status: http.StatusServiceUnavailable,
				err:    fmt.Errorf("server is draining; queued request rejected"),
			}
		}
		return admitted(), admitDecision{}
	case <-a.drain:
		<-a.queue
		a.releaseToken(token)
		a.mu.Lock()
		a.stats.RejectedDraining++
		a.mu.Unlock()
		return nil, admitDecision{
			status: http.StatusServiceUnavailable,
			err:    fmt.Errorf("server is draining; queued request rejected"),
		}
	}
}

// beginDrain evicts every queued waiter and makes admission refuse new
// queueing. Idempotent.
func (a *admission) beginDrain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	select {
	case <-a.drain:
	default:
		close(a.drain)
	}
}

// snapshot copies the overload ledger with the occupancy gauges filled.
func (a *admission) snapshot() AdmissionStats {
	a.mu.Lock()
	st := a.stats
	a.mu.Unlock()
	st.Enabled = a.enabled
	if a.enabled {
		st.ActiveNow = len(a.sem)
		st.QueuedNow = len(a.queue)
	}
	return st
}
