package server

import (
	"fmt"
	"strings"
	"time"

	"lisa/internal/core"
	"lisa/internal/program"
	"lisa/internal/sched"
	"lisa/internal/smt"
	"lisa/internal/store"
	"lisa/internal/ticket"
)

// GateRequest asks the daemon to run the CI gate for a proposed change
// against the registered rules of a corpus case.
type GateRequest struct {
	// Case is the corpus case id providing the registered rules.
	Case string `json:"case"`
	// Change is the full proposed MiniJ system source.
	Change string `json:"change"`
	// Summary describes the change for the gate log.
	Summary string `json:"summary,omitempty"`
	// Workers is the scheduler pool width (0 = server default).
	Workers int `json:"workers,omitempty"`
	// Incremental gates only what the change impacts relative to the
	// current head (the server primes its fingerprint cache on head once
	// per case).
	Incremental bool `json:"incremental,omitempty"`
	// FailOpen downgrades INCONCLUSIVE outcomes to warnings.
	FailOpen bool `json:"fail_open,omitempty"`
	// Budget bounds this request (nil = server default budget).
	Budget *BudgetSpec `json:"budget,omitempty"`
}

// BudgetSpec is the wire form of core.Budget.
type BudgetSpec struct {
	RunTimeoutMS int64 `json:"run_timeout_ms,omitempty"`
	JobTimeoutMS int64 `json:"job_timeout_ms,omitempty"`
	SolverNodes  int   `json:"solver_nodes,omitempty"`
	StepBudget   int   `json:"step_budget,omitempty"`
}

// Budget converts the wire spec to the engine's budget type.
func (b *BudgetSpec) Budget() core.Budget {
	if b == nil {
		return core.Budget{}
	}
	return core.Budget{
		RunTimeout:  time.Duration(b.RunTimeoutMS) * time.Millisecond,
		JobTimeout:  time.Duration(b.JobTimeoutMS) * time.Millisecond,
		SolverNodes: b.SolverNodes,
		StepBudget:  b.StepBudget,
	}
}

// Finding is one gate finding (mirror of ci.Finding).
type Finding struct {
	Severity string `json:"severity"`
	Text     string `json:"text"`
}

// GateResponse is the gate decision. Report is the canonical
// core.AssertReport.Render of the run — the byte-identity contract: it is
// byte-identical to what a local sequential run over the same inputs
// renders, under arbitrary request interleaving. Summary carries the gate
// log (which includes the asserted/skipped and cache-hit split, so it
// legitimately differs between a warm server and a cold process).
type GateResponse struct {
	Case       string     `json:"case"`
	Pass       bool       `json:"pass"`
	Verdict    string     `json:"verdict"` // "PASS" or "BLOCKED"
	Findings   []Finding  `json:"findings,omitempty"`
	Report     string     `json:"report,omitempty"`
	Summary    string     `json:"summary"`
	Asserted   int        `json:"asserted"`
	Skipped    int        `json:"skipped"`
	DurationMS float64    `json:"duration_ms"`
	Cache      CacheDelta `json:"cache"`
}

// AssertRequest asks the daemon to assert a case's registered rules over a
// version of the case's system (or an arbitrary source).
type AssertRequest struct {
	// Case is the corpus case id providing the registered rules.
	Case string `json:"case"`
	// Version picks the target: "head" (default), "latest", or
	// "<ticket-id>:buggy|fixed". Ignored when Source is set.
	Version string `json:"version,omitempty"`
	// Source, when non-empty, is an arbitrary MiniJ source to assert over.
	Source string `json:"source,omitempty"`
	// Tests also replays the case's similarity-selected test suite.
	Tests bool `json:"tests,omitempty"`
	// Workers is the scheduler pool width (0 = server default).
	Workers int `json:"workers,omitempty"`
	// Budget bounds this request (nil = server default budget).
	Budget *BudgetSpec `json:"budget,omitempty"`
}

// AssertCounts summarizes the report verdicts.
type AssertCounts struct {
	Verified   int `json:"verified"`
	Violations int `json:"violations"`
	Unknown    int `json:"unknown"`
	Uncovered  int `json:"uncovered"`
}

// AssertResponse carries the assertion outcome. Report is the canonical
// render — byte-identical to the sequential local run (same contract as
// GateResponse.Report).
type AssertResponse struct {
	Case       string       `json:"case"`
	Verdict    string       `json:"verdict"` // "PASS" or "VIOLATED"
	Counts     AssertCounts `json:"counts"`
	TestsRun   int          `json:"tests_run"`
	Report     string       `json:"report"`
	DurationMS float64      `json:"duration_ms"`
	Cache      CacheDelta   `json:"cache"`
}

// CacheDelta records what one request cost the hot caches: the scheduler
// job split plus the solver and snapshot counter growth observed across
// the run. Scheduler and solver numbers are exact (per-run; the solver
// delta is read from the case engine's private cache, which nothing else
// in the process touches). The snapshot delta is taken over the server's
// private cache shared by all its cases — exact under serial load and
// approximate when requests on other cases run concurrently; see the
// package comment on delta accounting.
type CacheDelta struct {
	SchedJobs        int    `json:"sched_jobs"`
	SchedExecuted    int    `json:"sched_executed"`
	SchedCacheHits   int    `json:"sched_cache_hits"`
	SolverQueries    uint64 `json:"solver_queries"`
	SolverCacheHits  uint64 `json:"solver_cache_hits"`
	SnapshotHits     uint64 `json:"snapshot_hits"`
	SnapshotMisses   uint64 `json:"snapshot_misses"`
	SnapshotCompiles uint64 `json:"snapshot_compiles"`
}

// WatchRequest registers a directory root with the file watcher.
type WatchRequest struct {
	Root string `json:"root"`
}

// WatcherStats describes what the polling file watcher has done so far.
type WatcherStats struct {
	Roots        int    `json:"roots"`
	Polls        uint64 `json:"polls"`
	FilesScanned uint64 `json:"files_scanned"`
	Changes      uint64 `json:"changes"`
	Prewarmed    uint64 `json:"prewarmed"`
	// PrewarmsShed counts change events whose prewarm the overload breaker
	// dropped (server saturated); the change is re-detected and re-warmed
	// by a later poll once load falls.
	PrewarmsShed uint64 `json:"prewarms_shed,omitempty"`
	DirtySets    uint64 `json:"dirty_sets"`
	LastChange   string `json:"last_change,omitempty"`
}

// CaseStats is the per-case runtime state exposed by /stats.
type CaseStats struct {
	Case       string           `json:"case"`
	SchedCache sched.CacheStats `json:"sched_cache"`
	// Solver is the case engine's private solver cache — exact per case,
	// regardless of what other cases or processes do.
	Solver smt.QueryCacheStats `json:"solver"`
}

// RequestCounts is the per-endpoint request ledger.
type RequestCounts struct {
	Gate    uint64 `json:"gate"`
	Assert  uint64 `json:"assert"`
	Refused uint64 `json:"refused"`
}

// StatsResponse aggregates the counters that previously only lisabench
// could see, scoped to this server instance. Snapshot is the server's
// private snapshot cache (exact per instance). Solver is the field-wise sum
// of the per-case engines' private solver caches — exact always, no matter
// what the rest of the process is doing (each engine owns its instance).
// Store and Tiers appear when the daemon runs over an on-disk store: Store
// is the store's own ledger, Tiers the unified two-tier counters of every
// cache backed by it (snapshot, fingerprint per case, solver per case).
type StatsResponse struct {
	UptimeMS   float64             `json:"uptime_ms"`
	Draining   bool                `json:"draining"`
	Inflight   int                 `json:"inflight"`
	Requests   RequestCounts       `json:"requests"`
	Admission  AdmissionStats      `json:"admission"`
	Cases      []CaseStats         `json:"cases"`
	Snapshot   program.CacheStats  `json:"snapshot_cache"`
	Solver     smt.QueryCacheStats `json:"solver"`
	Store      *store.Stats        `json:"store,omitempty"`
	Tiers      []store.TierStats   `json:"tiers,omitempty"`
	Watcher    WatcherStats        `json:"watcher"`
	HistoryLen int                 `json:"history_len"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// resolveTarget picks the source an assert request targets, mirroring the
// version semantics of the lisa CLI: an explicit source wins, then "head"
// (default), "latest", or "<ticket-id>:buggy|fixed".
func resolveTarget(cs *ticket.Case, version, source string) (string, error) {
	if source != "" {
		return source, nil
	}
	switch version {
	case "", "head":
		return cs.Head(), nil
	case "latest":
		if cs.Latest == "" {
			return "", fmt.Errorf("case %s has no latest head", cs.ID)
		}
		return cs.Latest, nil
	}
	parts := strings.SplitN(version, ":", 2)
	if len(parts) != 2 || (parts[1] != "buggy" && parts[1] != "fixed") {
		return "", fmt.Errorf("bad version %q (want head, latest, or <ticket-id>:buggy|fixed)", version)
	}
	for _, tk := range cs.Tickets {
		if tk.ID != parts[0] {
			continue
		}
		if parts[1] == "buggy" {
			return tk.BuggySource, nil
		}
		return tk.FixedSource, nil
	}
	return "", fmt.Errorf("no version %q in case %s", version, cs.ID)
}
