package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lisa/internal/ci"
	"lisa/internal/corpus"
)

// gateRaw fires one /gate over raw HTTP so the test can read status codes
// and headers the typed client folds into errors.
func gateRaw(t *testing.T, url string, req GateRequest, token string) (*http.Response, *GateResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/gate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if token != "" {
		hreq.Header.Set(clientTokenHeader, token)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("gate request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var gr GateResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatalf("decode gate response: %v", err)
	}
	return resp, &gr
}

// waitUntil polls cond for up to two seconds; admission state transitions
// under test are sub-millisecond, the window is generosity for CI boxes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestOverloadHammer floods a small-admission server with concurrent gates:
// some are admitted (directly or through the queue), the overflow is shed
// with 503 + Retry-After — and every admitted response renders
// byte-identical to the local sequential run. Overload changes who runs,
// never what an admitted run reports.
func TestOverloadHammer(t *testing.T) {
	srv := New(Config{Corpus: corpus.Load(), MaxConcurrent: 2, MaxQueue: 2})
	srv.testRequestDelay = 20 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cs := corpusCase(t, "zk-ephemeral")

	// Warm the case runtime first so hammer responses are fast and the
	// byte-identity comparison covers the warm path too.
	if resp, gr := gateRaw(t, ts.URL, GateRequest{Case: cs.ID, Change: cs.Head()}, ""); gr == nil {
		t.Fatalf("warmup gate: status %d", resp.StatusCode)
	}

	seq, err := ci.GateWith(localTwin(t, cs), ci.Change{
		Summary:   "proposed change",
		OldSource: cs.Head(),
		NewSource: cs.Head(),
	}, cs.Tests, ci.GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Report.Render()

	const clients = 12
	type result struct {
		status     int
		retryAfter string
		report     string
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, gr := gateRaw(t, ts.URL, GateRequest{Case: cs.ID, Change: cs.Head()}, "")
			results[i] = result{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			if gr != nil {
				results[i].report = gr.Report
			}
		}(i)
	}
	wg.Wait()

	admitted, shed := 0, 0
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			admitted++
			if r.report != want {
				t.Errorf("client %d: admitted report differs from sequential render", i)
			}
		case http.StatusServiceUnavailable:
			shed++
			if r.retryAfter == "" {
				t.Errorf("client %d: 503 without Retry-After", i)
			}
		default:
			t.Errorf("client %d: unexpected status %d", i, r.status)
		}
	}
	if admitted == 0 || shed == 0 {
		t.Fatalf("hammer should split: %d admitted, %d shed of %d", admitted, shed, clients)
	}
	st := srv.adm.snapshot()
	if st.RejectedQueueFull == 0 {
		t.Errorf("no queue-full rejections counted: %+v", st)
	}
	if got := int(st.Admitted); got != admitted+1 { // +1 warmup
		t.Errorf("admission ledger says %d admitted, observed %d", got, admitted+1)
	}
	// Overload shows up in the audit ring alongside the work it displaced.
	overloads := 0
	for _, e := range srv.hist.Last(0) {
		if e.Kind == "overload" {
			overloads++
		}
	}
	if overloads != shed {
		t.Errorf("history records %d overload entries, want %d", overloads, shed)
	}
}

// TestQuotaPerToken: a client class with MaxConcurrent 1 gets its second
// concurrent request rejected with 429 + Retry-After while another token
// is unaffected — quotas isolate noisy clients from each other even with
// global admission off.
func TestQuotaPerToken(t *testing.T) {
	srv := New(Config{
		Corpus: corpus.Load(),
		Quotas: map[string]QuotaClass{"ci-runner": {MaxConcurrent: 1}},
	})
	srv.testRequestDelay = 300 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cs := corpusCase(t, "zk-ephemeral")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if resp, gr := gateRaw(t, ts.URL, GateRequest{Case: cs.ID, Change: cs.Head()}, "ci-runner"); gr == nil {
			t.Errorf("first ci-runner request rejected: status %d", resp.StatusCode)
		}
	}()
	waitUntil(t, "first request admitted", func() bool { return srv.adm.snapshot().Admitted == 1 })

	resp, gr := gateRaw(t, ts.URL, GateRequest{Case: cs.ID, Change: cs.Head()}, "ci-runner")
	if gr != nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second ci-runner request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// A different token is not throttled by ci-runner's class.
	if resp, gr := gateRaw(t, ts.URL, GateRequest{Case: cs.ID, Change: cs.Head()}, "other"); gr == nil {
		t.Errorf("other-token request rejected: status %d", resp.StatusCode)
	}
	wg.Wait()
	if st := srv.adm.snapshot(); st.RejectedQuota != 1 {
		t.Errorf("RejectedQuota = %d, want 1", st.RejectedQuota)
	}
}

// TestWatchPrewarmShedUnderLoad: with every admission slot occupied, a
// poll sheds its prewarm (counted, audited, file forgotten) — and the next
// poll after load falls re-detects the file and warms it. Warmth is the
// first thing overload drops, and dropping it is never permanent.
func TestWatchPrewarmShedUnderLoad(t *testing.T) {
	srv := New(Config{
		Corpus:        corpus.Load(),
		MaxConcurrent: 1,
		MaxQueue:      1,
		WatchInterval: time.Hour, // polls only when the test says so
	})
	srv.testRequestDelay = 300 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cs := corpusCase(t, "zk-ephemeral")

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "sys.mj"), []byte(cs.Head()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterRoot(dir); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gateRaw(t, ts.URL, GateRequest{Case: cs.ID, Change: cs.Head()}, "")
	}()
	waitUntil(t, "gate occupying the slot", func() bool { return srv.adm.snapshot().ActiveNow == 1 })

	st := srv.PollNow()
	if st.PrewarmsShed != 1 || st.Prewarmed != 0 {
		t.Fatalf("saturated poll: shed=%d prewarmed=%d, want 1/0", st.PrewarmsShed, st.Prewarmed)
	}
	wg.Wait()

	st = srv.PollNow()
	if st.Prewarmed != 1 {
		t.Fatalf("idle poll after shed should prewarm, got %+v", st)
	}
	shedSeen, warmSeen := false, false
	for _, e := range srv.hist.Last(0) {
		if e.Kind == "watch" && e.Verdict == "SHED" {
			shedSeen = true
		}
		if e.Kind == "watch" && e.Verdict == "PREWARMED" {
			warmSeen = true
		}
	}
	if !shedSeen || !warmSeen {
		t.Errorf("history missing shed/prewarm audit: shed=%v warm=%v", shedSeen, warmSeen)
	}
}

// TestWatchEndpointShedAtSaturation: /watch registration never queues — a
// saturated server sheds it immediately with 503 + Retry-After.
func TestWatchEndpointShedAtSaturation(t *testing.T) {
	srv := New(Config{Corpus: corpus.Load(), MaxConcurrent: 1, MaxQueue: 1})
	srv.testRequestDelay = 300 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cs := corpusCase(t, "zk-ephemeral")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gateRaw(t, ts.URL, GateRequest{Case: cs.ID, Change: cs.Head()}, "")
	}()
	waitUntil(t, "gate occupying the slot", func() bool { return srv.adm.snapshot().ActiveNow == 1 })

	body, _ := json.Marshal(WatchRequest{Root: t.TempDir()})
	resp, err := http.Post(ts.URL+"/watch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/watch at saturation: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed /watch without Retry-After")
	}
	wg.Wait()
	if st := srv.adm.snapshot(); st.ShedWatch != 1 {
		t.Errorf("ShedWatch = %d, want 1", st.ShedWatch)
	}
}

// TestDrainWithPrewarmAndQueuedRequest is the graceful-drain contract
// under load: with a /watch prewarm in flight and a request queued but not
// admitted, Drain finishes the in-flight work (the admitted gate AND the
// prewarm), rejects the queued request with 503, and leaves the history
// ring deterministically flushed with all three outcomes.
func TestDrainWithPrewarmAndQueuedRequest(t *testing.T) {
	srv := New(Config{
		Corpus:        corpus.Load(),
		MaxConcurrent: 1,
		MaxQueue:      2,
		WatchInterval: 5 * time.Millisecond,
	})
	srv.testRequestDelay = 300 * time.Millisecond
	srv.watch.testPrewarmDelay = 300 * time.Millisecond
	started := make(chan struct{}, 1)
	srv.watch.testPrewarmStarted = started
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cs := corpusCase(t, "zk-ephemeral")

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "sys.mj"), []byte(cs.Head()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterRoot(dir); err != nil {
		t.Fatal(err)
	}
	// The background poll picks the file up and enters its (stretched)
	// prewarm; only then saturate, so the breaker does not shed it.
	<-started

	var wg sync.WaitGroup
	statuses := make([]int, 2)
	wg.Add(1)
	go func() { // admitted, slow
		defer wg.Done()
		resp, _ := gateRaw(t, ts.URL, GateRequest{Case: cs.ID, Change: cs.Head()}, "")
		statuses[0] = resp.StatusCode
	}()
	waitUntil(t, "gate occupying the slot", func() bool { return srv.adm.snapshot().ActiveNow == 1 })
	wg.Add(1)
	go func() { // queued, never admitted
		defer wg.Done()
		resp, _ := gateRaw(t, ts.URL, GateRequest{Case: cs.ID, Change: cs.Head()}, "")
		statuses[1] = resp.StatusCode
	}()
	waitUntil(t, "second gate queued", func() bool { return srv.adm.snapshot().QueuedNow == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	if statuses[0] != http.StatusOK {
		t.Errorf("in-flight gate = %d, want 200 (drain must finish in-flight work)", statuses[0])
	}
	if statuses[1] != http.StatusServiceUnavailable {
		t.Errorf("queued gate = %d, want 503 (drain must reject queued work)", statuses[1])
	}
	if st := srv.adm.snapshot(); st.RejectedDraining != 1 {
		t.Errorf("RejectedDraining = %d, want 1", st.RejectedDraining)
	}
	// The flushed history holds all three outcomes: the finished prewarm,
	// the finished gate, and the rejected queued request.
	kinds := map[string]int{}
	verdicts := map[string]int{}
	for _, e := range srv.hist.Last(0) {
		kinds[e.Kind]++
		verdicts[e.Kind+"/"+e.Verdict]++
	}
	if verdicts["watch/PREWARMED"] == 0 {
		t.Errorf("history lost the in-flight prewarm: %v", verdicts)
	}
	if kinds["gate"] != 1 {
		t.Errorf("history gate entries = %d, want 1", kinds["gate"])
	}
	if kinds["overload"] != 1 {
		t.Errorf("history overload entries = %d, want 1", kinds["overload"])
	}
}

