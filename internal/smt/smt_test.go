package smt

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) Formula {
	t.Helper()
	f, err := ParsePredicate(src)
	if err != nil {
		t.Fatalf("ParsePredicate(%q): %v", src, err)
	}
	return f
}

func TestParsePredicate(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`s != null`, `s != null`},
		{`s == null`, `s == null`},
		{`s.closing == false`, `!(s.closing)`},
		{`s.isClosing() == false && s.ttl > 0`, `!(s.isClosing) && s.ttl > 0`},
		{`a || b && c`, `a || b && c`},
		{`!(a || b)`, `!(a || b)`},
		{`x == 3`, `x == 3`},
		{`x >= -2`, `x >= -2`},
		{`x < y`, `x < y`},
		{`mode == "observer"`, `mode == "observer"`},
		{`mode != "observer"`, `mode != "observer"`},
		{`true`, `true`},
		{`snap.expired`, `snap.expired`},
	}
	for _, c := range cases {
		f := mustParse(t, c.src)
		if got := f.String(); got != c.want {
			t.Errorf("ParsePredicate(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParsePredicateErrors(t *testing.T) {
	cases := []string{
		`s ==`,
		`&& a`,
		`s < null`,
		`s > "x"`,
		`(a || b`,
		`a b`,
		`s.`,
		`x == -`,
	}
	for _, src := range cases {
		if _, err := ParsePredicate(src); err == nil {
			t.Errorf("ParsePredicate(%q): expected error", src)
		}
	}
}

func TestSATBasics(t *testing.T) {
	cases := []struct {
		src string
		sat bool
	}{
		{`a && !a`, false},
		{`a || !a`, true},
		{`a && b`, true},
		{`x > 3 && x < 5`, true},  // x = 4
		{`x > 3 && x < 4`, false}, // no integer between
		{`x >= 3 && x <= 3 && x != 3`, false},
		{`x == 3 && x == 4`, false},
		{`x != 3 && x != 4`, true},
		{`x < y && y < x`, false},
		{`x <= y && y <= x && x != y`, false},
		{`x < y && y < z && z < x`, false},
		{`x < y && y < z && x < z`, true},
		{`s == null && s != null`, false},
		{`m == "a" && m == "b"`, false},
		{`m == "a" && m != "b"`, true},
		{`m == "a" && m != "a"`, false},
		{`x == 5 && x > 4 && x < 6`, true},
	}
	for _, c := range cases {
		f := mustParse(t, c.src)
		if got := SAT(f); got != c.sat {
			t.Errorf("SAT(%q) = %v, want %v", c.src, got, c.sat)
		}
	}
}

func TestImplies(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{`x == 3`, `x > 2`, true},
		{`x > 2`, `x == 3`, false},
		{`a && b`, `a`, true},
		{`a`, `a || b`, true},
		{`s != null && !s.closing`, `s != null`, true},
		{`s != null`, `s != null && !s.closing`, false},
		{`x > 5`, `x >= 5`, true},
		{`x >= 5`, `x > 5`, false},
		{`x == y && y == z`, `x == z`, true},
	}
	for _, c := range cases {
		p, q := mustParse(t, c.p), mustParse(t, c.q)
		if got := Implies(p, q); got != c.want {
			t.Errorf("Implies(%q, %q) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

// TestPaperWorkedExample reproduces the complement check from §3.2 of the
// paper: the checker for ephemeral node creation is
//
//	s != null && s.isClosing() == false && s.ttl > 0
//
// and a trace violates the semantic iff its path condition is satisfiable
// together with the checker's complement (missing conditions are
// unconstrained).
func TestPaperWorkedExample(t *testing.T) {
	checker := mustParse(t, `s != null && s.isClosing() == false && s.ttl > 0`)
	comp := Complement(checker)
	if got := comp.String(); got != `s == null || s.isClosing || s.ttl <= 0` {
		t.Errorf("complement = %q", got)
	}
	cases := []struct {
		trace    string
		violates bool
	}{
		// Trace creates the node when the session is null: violation.
		{`s == null`, true},
		// Trace checks null and closing but omits the ttl check: the
		// missing condition is treated as unconstrained, so the complement
		// is satisfiable via s.ttl <= 0: violation.
		{`s != null && s.isClosing() == false`, true},
		// Full guard: adheres to the semantic.
		{`s != null && s.isClosing() == false && s.ttl > 0`, false},
		// Stronger guard than required still adheres.
		{`s != null && s.isClosing() == false && s.ttl > 5`, false},
	}
	for _, c := range cases {
		pc := mustParse(t, c.trace)
		if got := SAT(NewAnd(pc, comp)); got != c.violates {
			t.Errorf("trace %q: violation = %v, want %v", c.trace, got, c.violates)
		}
	}
}

func TestComplementProperties(t *testing.T) {
	f := func(seed int64) bool {
		g := genFormula(newTestRng(seed), 4)
		comp := Complement(g)
		// f ∧ ¬f is UNSAT and f ∨ ¬f is valid.
		return !SAT(NewAnd(g, comp)) && Valid(NewOr(g, comp))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		g := genFormula(newTestRng(seed), 4)
		return Equiv(g, NNF(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNNFHasNoCompoundNegation(t *testing.T) {
	f := func(seed int64) bool {
		g := NNF(genFormula(newTestRng(seed), 4))
		ok := true
		var walk func(Formula)
		walk = func(h Formula) {
			switch n := h.(type) {
			case *Not:
				if _, isAtom := n.X.(*AtomF); !isAtom {
					ok = false
				}
			case *And:
				for _, x := range n.Xs {
					walk(x)
				}
			case *Or:
				for _, x := range n.Xs {
					walk(x)
				}
			}
		}
		walk(g)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRenameRoot(t *testing.T) {
	f := mustParse(t, `s != null && s.ttl > 0 && other.x == s.ttl`)
	g := RenameRoot(f, "s", "session")
	want := `session != null && session.ttl > 0 && other.x == session.ttl`
	if g.String() != want {
		t.Errorf("RenameRoot = %q, want %q", g.String(), want)
	}
	// Root named "other" must be untouched, including prefix-similar roots.
	h := RenameRoot(mustParse(t, `oth.x == 1 && other.x == 2`), "other", "o2")
	if h.String() != `oth.x == 1 && o2.x == 2` {
		t.Errorf("prefix-safe rename = %q", h.String())
	}
}

func TestAtomsAndRoots(t *testing.T) {
	f := mustParse(t, `s != null && s.ttl > 0 && b.locs >= 1 && s.ttl > 0`)
	atoms := Atoms(f)
	if len(atoms) != 3 {
		t.Errorf("Atoms = %d (%v), want 3 (dedup)", len(atoms), atoms)
	}
	roots := Roots(f)
	if !roots["s"] || !roots["b"] || len(roots) != 2 {
		t.Errorf("Roots = %v", roots)
	}
}

func TestSolveModel(t *testing.T) {
	f := mustParse(t, `a && x > 3`)
	sat, model, err := Solve(f)
	if err != nil || !sat {
		t.Fatalf("Solve: sat=%v err=%v", sat, err)
	}
	if len(model) == 0 {
		t.Error("expected non-empty model")
	}
	if !strings.Contains(model.String(), "b:a=true") {
		t.Errorf("model = %v, want a=true", model)
	}
}

func TestEquivOperatorFolding(t *testing.T) {
	// !(x < 3) must be equivalent to x >= 3, sharing one DPLL variable.
	f := NewNot(mustParse(t, `x < 3`))
	g := mustParse(t, `x >= 3`)
	if !Equiv(f, g) {
		t.Error("!(x < 3) not equivalent to x >= 3")
	}
	if len(Atoms(NewAnd(f, g))) != 1 {
		t.Errorf("atoms = %v, want 1 shared", Atoms(NewAnd(f, g)))
	}
}

func TestConstFolding(t *testing.T) {
	if NewAnd().String() != "true" {
		t.Error("empty And should be true")
	}
	if NewOr().String() != "false" {
		t.Error("empty Or should be false")
	}
	if NewAnd(True(), False()).String() != "false" {
		t.Error("And with false should fold")
	}
	if NewOr(False(), True()).String() != "true" {
		t.Error("Or with true should fold")
	}
	if NewNot(NewNot(NewAtom(BoolAtom("a")))).String() != "a" {
		t.Error("double negation should collapse")
	}
}

// genFormula builds a random formula over a small mixed alphabet.
func genFormula(r *testRng, depth int) Formula {
	if depth <= 0 {
		return genLeaf(r)
	}
	switch r.intn(6) {
	case 0:
		return NewNot(genFormula(r, depth-1))
	case 1, 2:
		return NewAnd(genFormula(r, depth-1), genFormula(r, depth-1))
	case 3, 4:
		return NewOr(genFormula(r, depth-1), genFormula(r, depth-1))
	default:
		return genLeaf(r)
	}
}

func genLeaf(r *testRng) Formula {
	vars := []string{"x", "y", "z"}
	bools := []string{"p", "q", "s.closing"}
	switch r.intn(4) {
	case 0:
		return NewAtom(BoolAtom(bools[r.intn(len(bools))]))
	case 1:
		return NewAtom(NullAtom(vars[r.intn(len(vars))]))
	case 2:
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return NewAtom(CmpCAtom(vars[r.intn(len(vars))], ops[r.intn(len(ops))], int64(r.intn(5))))
	default:
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		a := vars[r.intn(len(vars))]
		b := vars[r.intn(len(vars))]
		return NewAtom(CmpVAtom(a, ops[r.intn(len(ops))], b))
	}
}

type testRng struct{ state uint64 }

func newTestRng(seed int64) *testRng {
	return &testRng{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *testRng) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 16
}

func (r *testRng) intn(n int) int { return int(r.next() % uint64(n)) }

// Property: rendering a formula and re-parsing it preserves semantics —
// the predicate language and the printer are mutually consistent.
func TestRenderParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := genFormula(newTestRng(seed), 3)
		text := g.String()
		parsed, err := ParsePredicate(text)
		if err != nil {
			t.Logf("parse %q: %v", text, err)
			return false
		}
		return Equiv(g, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
