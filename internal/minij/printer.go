package minij

import (
	"fmt"
	"strconv"
	"strings"
)

// CanonExpr renders an expression in canonical single-line form. Canonical
// text is whitespace-normalized and fully parenthesis-free except where
// required, so two syntactically equal expressions always canonicalize to
// the same string. Contract target patterns match against this form.
func CanonExpr(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e, 0)
	return sb.String()
}

// precedence levels for canonical printing (higher binds tighter).
func opPrec(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "!=":
		return 3
	case "<", "<=", ">", ">=":
		return 4
	case "+", "-":
		return 5
	case "*", "/", "%":
		return 6
	}
	return 7
}

func writeExpr(sb *strings.Builder, e Expr, parent int) {
	switch n := e.(type) {
	case *IntLit:
		sb.WriteString(strconv.FormatInt(n.Value, 10))
	case *BoolLit:
		if n.Value {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case *StrLit:
		sb.WriteString(strconv.Quote(n.Value))
	case *NullLit:
		sb.WriteString("null")
	case *Ident:
		sb.WriteString(n.Name)
	case *FieldAccess:
		writeExpr(sb, n.Recv, 7)
		sb.WriteByte('.')
		sb.WriteString(n.Name)
	case *Call:
		if n.Recv != nil {
			writeExpr(sb, n.Recv, 7)
			sb.WriteByte('.')
		}
		sb.WriteString(n.Name)
		sb.WriteByte('(')
		for i, a := range n.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a, 0)
		}
		sb.WriteByte(')')
	case *New:
		sb.WriteString("new ")
		sb.WriteString(n.Class)
		sb.WriteByte('(')
		for i, a := range n.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a, 0)
		}
		sb.WriteByte(')')
	case *Unary:
		sb.WriteString(n.Op)
		writeExpr(sb, n.X, 7)
	case *Binary:
		prec := opPrec(n.Op)
		if prec < parent {
			sb.WriteByte('(')
		}
		writeExpr(sb, n.X, prec)
		sb.WriteByte(' ')
		sb.WriteString(n.Op)
		sb.WriteByte(' ')
		// Right operand uses prec+1 so chains print left-associatively
		// with explicit parens on the right when re-nesting occurs.
		writeExpr(sb, n.Y, prec+1)
		if prec < parent {
			sb.WriteByte(')')
		}
	default:
		fmt.Fprintf(sb, "<?expr %T>", e)
	}
}

// CanonStmt renders the head of a statement in canonical single-line form.
// Compound statements render only their header (e.g. "if (cond)"), which is
// what target-statement patterns match against.
func CanonStmt(s Stmt) string {
	switch n := s.(type) {
	case *Block:
		return "{...}"
	case *VarDecl:
		if n.Init != nil {
			return n.Type.String() + " " + n.Name + " = " + CanonExpr(n.Init) + ";"
		}
		return n.Type.String() + " " + n.Name + ";"
	case *Assign:
		return CanonExpr(n.Target) + " = " + CanonExpr(n.Value) + ";"
	case *If:
		return "if (" + CanonExpr(n.Cond) + ")"
	case *While:
		return "while (" + CanonExpr(n.Cond) + ")"
	case *For:
		var init, cond, post string
		if n.Init != nil {
			init = strings.TrimSuffix(CanonStmt(n.Init), ";")
		}
		if n.Cond != nil {
			cond = CanonExpr(n.Cond)
		}
		if n.Post != nil {
			post = strings.TrimSuffix(CanonStmt(n.Post), ";")
		}
		return "for (" + init + "; " + cond + "; " + post + ")"
	case *ForEach:
		return "for (" + n.Var + " in " + CanonExpr(n.Iter) + ")"
	case *Return:
		if n.Value != nil {
			return "return " + CanonExpr(n.Value) + ";"
		}
		return "return;"
	case *Break:
		return "break;"
	case *Continue:
		return "continue;"
	case *Throw:
		return "throw " + CanonExpr(n.Value) + ";"
	case *Try:
		return "try"
	case *Sync:
		return "synchronized (" + CanonExpr(n.Lock) + ")"
	case *ExprStmt:
		return CanonExpr(n.E) + ";"
	}
	return fmt.Sprintf("<?stmt %T>", s)
}

// FormatProgram pretty-prints a program in canonical multi-line form with
// tab indentation. Formatting the same program twice yields identical text,
// which makes version-to-version diffs stable.
func FormatProgram(p *Program) string {
	var sb strings.Builder
	for i, c := range p.Classes {
		if i > 0 {
			sb.WriteByte('\n')
		}
		formatClass(&sb, c)
	}
	return sb.String()
}

func formatClass(sb *strings.Builder, c *Class) {
	sb.WriteString("class ")
	sb.WriteString(c.Name)
	sb.WriteString(" {\n")
	for _, f := range c.Fields {
		sb.WriteByte('\t')
		sb.WriteString(f.Type.String())
		sb.WriteByte(' ')
		sb.WriteString(f.Name)
		sb.WriteString(";\n")
	}
	if len(c.Fields) > 0 && len(c.Methods) > 0 {
		sb.WriteByte('\n')
	}
	for i, m := range c.Methods {
		if i > 0 {
			sb.WriteByte('\n')
		}
		formatMethod(sb, m)
	}
	sb.WriteString("}\n")
}

// FormatMethod pretty-prints one method in canonical form, prefixed with
// its qualified name. Like FormatProgram, the output depends only on the
// method's AST — never on source positions or original whitespace — so it
// doubles as the content identity the incremental scheduler fingerprints.
func FormatMethod(m *Method) string {
	var sb strings.Builder
	sb.WriteString(m.FullName())
	sb.WriteByte('\n')
	formatMethod(&sb, m)
	return sb.String()
}

func formatMethod(sb *strings.Builder, m *Method) {
	sb.WriteByte('\t')
	if m.Static {
		sb.WriteString("static ")
	}
	sb.WriteString(m.Ret.String())
	sb.WriteByte(' ')
	sb.WriteString(m.Name)
	sb.WriteByte('(')
	for i, p := range m.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Type.String())
		sb.WriteByte(' ')
		sb.WriteString(p.Name)
	}
	sb.WriteString(") ")
	formatBlock(sb, m.Body, 1)
	sb.WriteByte('\n')
}

func formatBlock(sb *strings.Builder, b *Block, depth int) {
	sb.WriteString("{\n")
	for _, s := range b.Stmts {
		formatStmt(sb, s, depth+1)
	}
	indent(sb, depth)
	sb.WriteString("}")
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteByte('\t')
	}
}

func formatStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth)
	switch n := s.(type) {
	case *Block:
		formatBlock(sb, n, depth)
		sb.WriteByte('\n')
	case *If:
		formatIf(sb, n, depth)
		sb.WriteByte('\n')
	case *While:
		sb.WriteString(CanonStmt(n))
		sb.WriteByte(' ')
		formatBlock(sb, n.Body, depth)
		sb.WriteByte('\n')
	case *For:
		sb.WriteString(CanonStmt(n))
		sb.WriteByte(' ')
		formatBlock(sb, n.Body, depth)
		sb.WriteByte('\n')
	case *ForEach:
		sb.WriteString(CanonStmt(n))
		sb.WriteByte(' ')
		formatBlock(sb, n.Body, depth)
		sb.WriteByte('\n')
	case *Try:
		sb.WriteString("try ")
		formatBlock(sb, n.Body, depth)
		sb.WriteString(" catch (")
		sb.WriteString(n.CatchVar)
		sb.WriteString(") ")
		formatBlock(sb, n.Catch, depth)
		sb.WriteByte('\n')
	case *Sync:
		sb.WriteString(CanonStmt(n))
		sb.WriteByte(' ')
		formatBlock(sb, n.Body, depth)
		sb.WriteByte('\n')
	default:
		sb.WriteString(CanonStmt(s))
		sb.WriteByte('\n')
	}
}

func formatIf(sb *strings.Builder, n *If, depth int) {
	sb.WriteString("if (")
	sb.WriteString(CanonExpr(n.Cond))
	sb.WriteString(") ")
	formatBlock(sb, n.Then, depth)
	switch e := n.Else.(type) {
	case nil:
	case *If:
		sb.WriteString(" else ")
		formatIf(sb, e, depth)
	case *Block:
		sb.WriteString(" else ")
		formatBlock(sb, e, depth)
	}
}
