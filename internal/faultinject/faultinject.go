// Package faultinject is a seeded, deterministic fault injector for the
// assertion runtime. Hook points in the solver, interpreter, path walker,
// job runner, and snapshot cache consult the armed Plan by point name and
// fail in a prescribed way: a forced panic, a budget-exhaustion error, a
// job that never finishes (slow), or a corrupted cache entry.
//
// Rules are sticky: a matching point fires on every visit, never "the Nth
// time", so an injected fault hits the same logical work items regardless
// of worker count or scheduling order — the property the chaos experiment
// leans on to demand byte-identical reports at workers=1 and workers=8.
//
// The injector is process-global but off by default; hot paths guard their
// hook with Armed() so an unarmed run pays one atomic load. Production
// binaries never arm a plan — only the chaos experiment and robustness
// tests do.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the failure mode a rule injects at its point.
type Kind int

// Failure modes. Each hook point documents which kinds it honors;
// unsupported kinds at a point are ignored.
const (
	// Panic forces a runtime panic at the point (containment check).
	Panic Kind = iota
	// Budget forces the point's budget-exhaustion error (smt.ErrBudget,
	// interp.ErrStepBudget, ...).
	Budget
	// Slow blocks the point until its job context expires (timeout check).
	Slow
	// Corrupt mutates the value the point is about to hand out (e.g. a
	// snapshot cache entry), so integrity checks downstream must catch it.
	Corrupt
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Budget:
		return "budget"
	case Slow:
		return "slow"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Plan is one seeded injection plan: a set of sticky point→kind rules plus
// a hit log. A point ending in '*' matches every point with that prefix
// (longest prefix wins; an exact rule always beats a wildcard).
type Plan struct {
	// Seed labels the plan and feeds Pick; it does not randomize rule
	// matching, which is fully deterministic.
	Seed int64

	mu    sync.Mutex
	rules map[string]Kind
	hits  map[string]int
}

// NewPlan returns an empty plan with the given seed.
func NewPlan(seed int64) *Plan {
	return &Plan{Seed: seed, rules: map[string]Kind{}, hits: map[string]int{}}
}

// Set adds a sticky rule and returns the plan for chaining.
func (p *Plan) Set(point string, k Kind) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules[point] = k
	return p
}

// match resolves point against the rules: exact first, then the longest
// matching '*' wildcard.
func (p *Plan) match(point string) (Kind, bool) {
	if k, ok := p.rules[point]; ok {
		return k, true
	}
	bestLen := -1
	var best Kind
	for pat, k := range p.rules {
		if !strings.HasSuffix(pat, "*") {
			continue
		}
		prefix := pat[:len(pat)-1]
		if strings.HasPrefix(point, prefix) && len(prefix) > bestLen {
			bestLen = len(prefix)
			best = k
		}
	}
	return best, bestLen >= 0
}

// Hits returns a copy of the hit counts, keyed by the concrete point names
// that fired (not the wildcard patterns).
func (p *Plan) Hits() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.hits))
	for k, v := range p.hits {
		out[k] = v
	}
	return out
}

// HitCount returns the total number of injected faults so far.
func (p *Plan) HitCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, v := range p.hits {
		n += v
	}
	return n
}

// HitLog renders the hit counts deterministically ("point×n, ...").
func (p *Plan) HitLog() string {
	hits := p.Hits()
	keys := make([]string, 0, len(hits))
	for k := range hits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s×%d", k, hits[k])
	}
	return strings.Join(parts, ", ")
}

// active is the armed plan, nil when injection is off.
var active atomic.Pointer[Plan]

// Arm makes p the process-wide active plan. Arm the plan only around the
// run under test and Disarm afterwards; arming is not reference counted.
func Arm(p *Plan) { active.Store(p) }

// Disarm turns injection off.
func Disarm() { active.Store(nil) }

// Armed reports whether a plan is active. Hook points on hot paths call
// this before building their point name, so the unarmed cost is one atomic
// load.
func Armed() bool { return active.Load() != nil }

// At consults the active plan for point. When a rule matches, the hit is
// recorded and the rule's kind returned with ok=true. With no armed plan
// or no matching rule, ok is false and the caller proceeds normally.
func At(point string) (Kind, bool) {
	p := active.Load()
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	k, ok := p.match(point)
	if ok {
		p.hits[point]++
	}
	return k, ok
}

// Pick deterministically selects one of candidates from the seed and a
// salt label: the same (seed, salt, candidates) always yields the same
// choice, independent of candidate order. Empty candidates yield "".
func Pick(seed int64, salt string, candidates []string) string {
	if len(candidates) == 0 {
		return ""
	}
	sorted := append([]string(nil), candidates...)
	sort.Strings(sorted)
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s", seed, salt)
	return sorted[h.Sum64()%uint64(len(sorted))]
}
