package corpus

import (
	"strings"
	"testing"

	"lisa/internal/contract"
	"lisa/internal/core"
	"lisa/internal/infer"
	"lisa/internal/interp"
	"lisa/internal/minij"
)

func TestStudyStatistics(t *testing.T) {
	c := Load()
	st := c.ComputeStats()
	if st.Cases != 16 {
		t.Errorf("cases = %d, want 16", st.Cases)
	}
	if st.Bugs != 34 {
		t.Errorf("bugs = %d, want 34", st.Bugs)
	}
	if st.Systems != 4 {
		t.Errorf("systems = %d, want 4", st.Systems)
	}
	names := c.SystemNames()
	want := []string{"cassandrasim", "hbasesim", "hdfssim", "zksim"}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("system %d = %q, want %q", i, names[i], w)
		}
	}
	zk := c.Get("zk-ephemeral")
	if zk == nil || zk.FeatureBugCount != 46 || zk.LastReported-zk.FirstReported != 14 {
		t.Errorf("zk-ephemeral longevity stats wrong: %+v", zk)
	}
}

// TestEveryVersionCompiles validates every source snapshot in the corpus.
func TestEveryVersionCompiles(t *testing.T) {
	for _, cs := range Load().Cases {
		for _, tk := range cs.Tickets {
			for _, src := range map[string]string{"buggy": tk.BuggySource, "fixed": tk.FixedSource} {
				prog, err := minij.Parse(src)
				if err != nil {
					t.Errorf("%s/%s: parse: %v", cs.ID, tk.ID, err)
					continue
				}
				if err := minij.Check(prog); err != nil {
					t.Errorf("%s/%s: check: %v", cs.ID, tk.ID, err)
				}
			}
			if tk.BuggySource == tk.FixedSource {
				t.Errorf("%s/%s: buggy and fixed are identical", cs.ID, tk.ID)
			}
			if tk.Diff() == "" {
				t.Errorf("%s/%s: empty diff", cs.ID, tk.ID)
			}
		}
		if cs.Latest != "" {
			prog, err := minij.Parse(cs.Latest)
			if err != nil {
				t.Errorf("%s: latest: %v", cs.ID, err)
				continue
			}
			if err := minij.Check(prog); err != nil {
				t.Errorf("%s: latest check: %v", cs.ID, err)
			}
		}
	}
}

// TestSuitePassesOnHead replays every case's full test suite against its
// newest source: the suites must be green at head, like any real system's.
func TestSuitePassesOnHead(t *testing.T) {
	for _, cs := range Load().Cases {
		head := cs.Head()
		for _, tc := range cs.Tests {
			full := head + "\n" + tc.Source
			prog, err := minij.Parse(full)
			if err != nil {
				t.Errorf("%s/%s: parse: %v", cs.ID, tc.Name, err)
				continue
			}
			if err := minij.Check(prog); err != nil {
				t.Errorf("%s/%s: check: %v", cs.ID, tc.Name, err)
				continue
			}
			in := interp.New(prog)
			if _, err := in.CallStatic(tc.Class, tc.Method); err != nil {
				t.Errorf("%s/%s: run: %v", cs.ID, tc.Name, err)
			}
		}
	}
}

// TestRegressionTestsPassOnFix replays each ticket's regression tests on
// that ticket's fixed source.
func TestRegressionTestsPassOnFix(t *testing.T) {
	for _, cs := range Load().Cases {
		for _, tk := range cs.Tickets {
			for _, tc := range tk.RegressionTests {
				full := tk.FixedSource + "\n" + tc.Source
				prog, err := minij.Parse(full)
				if err != nil {
					t.Errorf("%s/%s/%s: parse: %v", cs.ID, tk.ID, tc.Name, err)
					continue
				}
				if err := minij.Check(prog); err != nil {
					t.Errorf("%s/%s/%s: check: %v", cs.ID, tk.ID, tc.Name, err)
					continue
				}
				in := interp.New(prog)
				if _, err := in.CallStatic(tc.Class, tc.Method); err != nil {
					t.Errorf("%s/%s/%s: run: %v", cs.ID, tk.ID, tc.Name, err)
				}
			}
		}
	}
}

// TestEveryTicketYieldsGroundedSemantics checks that inference extracts at
// least one cross-check-grounded semantic from every ticket bundle.
func TestEveryTicketYieldsGroundedSemantics(t *testing.T) {
	pa := &infer.PatchAnalyzer{Generalize: true}
	for _, cs := range Load().Cases {
		for _, tk := range cs.Tickets {
			res, err := pa.Infer(tk)
			if err != nil {
				t.Errorf("%s/%s: infer: %v", cs.ID, tk.ID, err)
				continue
			}
			if len(res.Semantics) == 0 {
				t.Errorf("%s/%s: no semantics inferred", cs.ID, tk.ID)
				continue
			}
			kept, rejected := infer.FilterGrounded(res, tk)
			if len(kept) == 0 {
				t.Errorf("%s/%s: nothing grounded; rejections: %v", cs.ID, tk.ID, rejected)
			}
		}
	}
}

// TestRulePreventsEveryRegression is the corpus-wide Figure 1/3 replay:
// for every case, the rule inferred from the FIRST fix must flag every
// later ticket's buggy version (the regression) while passing that
// ticket's fixed version.
func TestRulePreventsEveryRegression(t *testing.T) {
	for _, cs := range Load().Cases {
		e := core.New()
		if _, err := e.ProcessTicket(cs.Tickets[0]); err != nil {
			t.Errorf("%s: process first ticket: %v", cs.ID, err)
			continue
		}
		if e.Registry.Len() == 0 {
			t.Errorf("%s: no rules registered from first fix", cs.ID)
			continue
		}
		for _, tk := range cs.Tickets[1:] {
			rep, err := e.Assert(tk.BuggySource, nil)
			if err != nil {
				t.Errorf("%s/%s: assert buggy: %v", cs.ID, tk.ID, err)
				continue
			}
			if rep.Counts.Violations == 0 {
				t.Errorf("%s/%s: regression NOT caught by rule from first fix", cs.ID, tk.ID)
			}
			repFixed, err := e.Assert(tk.FixedSource, nil)
			if err != nil {
				t.Errorf("%s/%s: assert fixed: %v", cs.ID, tk.ID, err)
				continue
			}
			if repFixed.Counts.Violations != 0 {
				t.Errorf("%s/%s: false positives on fixed version: %v", cs.ID, tk.ID, repFixed.Violations())
			}
		}
	}
}

// TestLatestHeadsCarryUnknownBugs reproduces §4: on the two cases with a
// "latest" head, the rules inferred from the historical fixes flag the
// still-unguarded paths (Bug #1 in hbasesim, Bug #2 in hdfssim).
func TestLatestHeadsCarryUnknownBugs(t *testing.T) {
	cases := map[string]struct {
		wantViolations int
		wantMethods    []string
	}{
		"hbase-snapshot-ttl": {
			wantViolations: 2,
			wantMethods:    []string{"ExportHandler.exportSnapshot", "ScanHandler.scanSnapshot"},
		},
		"hdfs-observer-locations": {
			wantViolations: 1,
			wantMethods:    []string{"BatchedListingServer.getBatchedListing"},
		},
	}
	corpus := Load()
	for id, want := range cases {
		cs := corpus.Get(id)
		if cs == nil || cs.Latest == "" {
			t.Errorf("%s: missing latest head", id)
			continue
		}
		e := core.New()
		for _, tk := range cs.Tickets {
			if _, err := e.ProcessTicket(tk); err != nil {
				t.Errorf("%s/%s: %v", id, tk.ID, err)
			}
		}
		rep, err := e.Assert(cs.Latest, cs.Tests)
		if err != nil {
			t.Errorf("%s: assert latest: %v", id, err)
			continue
		}
		if rep.Counts.Violations != want.wantViolations {
			t.Errorf("%s: violations = %d, want %d:\n%v", id, rep.Counts.Violations, want.wantViolations, rep.Violations())
		}
		found := map[string]bool{}
		for _, v := range rep.Violations() {
			for _, m := range want.wantMethods {
				if strings.Contains(v, m) {
					found[m] = true
				}
			}
		}
		for _, m := range want.wantMethods {
			if !found[m] {
				t.Errorf("%s: expected violation in %s; got %v", id, m, rep.Violations())
			}
		}
		// Sanity: the guarded paths still verify.
		for _, sr := range rep.Semantics {
			if sr.Semantic.Kind == contract.StateKind && !sr.SanityOK {
				t.Errorf("%s: sanity failed for %s", id, sr.Semantic.ID)
			}
		}
	}
}

// TestFigure6Generalization replays the zk-sync-serialize case: the
// literal (scoped) rule from the first fix misses the ACL cache regression
// while the generalized rule catches it.
func TestFigure6Generalization(t *testing.T) {
	cs := Load().Get("zk-sync-serialize")
	pa := &infer.PatchAnalyzer{Generalize: true}
	res, err := pa.Infer(cs.Tickets[0])
	if err != nil {
		t.Fatal(err)
	}
	var literal, general *contract.Semantic
	for _, s := range res.Semantics {
		if s.Kind != contract.StructuralKind {
			continue
		}
		if len(s.Structural.(contract.NoBlockingInSync).Only) > 0 {
			literal = s
		} else {
			general = s
		}
	}
	if literal == nil || general == nil {
		t.Fatalf("expected literal and general rules, got %v", res.Semantics)
	}
	regressed, err := minij.Parse(cs.Tickets[1].BuggySource)
	if err != nil {
		t.Fatal(err)
	}
	if err := minij.Check(regressed); err != nil {
		t.Fatal(err)
	}
	if vs := literal.Structural.Check(regressed); len(vs) != 0 {
		t.Errorf("literal rule unexpectedly caught the new-function regression: %v", vs)
	}
	vs := general.Structural.Check(regressed)
	if len(vs) == 0 {
		t.Error("generalized rule missed the ACL cache regression")
	}
	for _, v := range vs {
		if v.Method.FullName() != "ReferenceCountedACLCache.serialize" {
			t.Errorf("unexpected violation site: %v", v)
		}
	}
}

// TestDynamicConfirmationOnRegressions replays each case's full test suite
// on the last regression's buggy version and requires at least one case
// where a selected test dynamically covers the violating path.
func TestDynamicAssertOverSuites(t *testing.T) {
	for _, cs := range Load().Cases {
		e := core.New()
		if _, err := e.ProcessTicket(cs.Tickets[0]); err != nil {
			t.Fatalf("%s: %v", cs.ID, err)
		}
		last := cs.Tickets[len(cs.Tickets)-1]
		rep, err := e.Assert(last.BuggySource, cs.Tests)
		if err != nil {
			// Suites may reference classes added only at head (e.g. the
			// latest-only servers); skip those combinations.
			continue
		}
		if rep.Counts.Violations == 0 {
			t.Errorf("%s: no violations on last regression with suite", cs.ID)
		}
	}
}
