package smt

import (
	"fmt"

	"lisa/internal/minij"
)

// ParsePredicate parses the predicate language used for contract conditions
// (a strict subset of MiniJ expression syntax):
//
//	or     := and ("||" and)*
//	and    := unary ("&&" unary)*
//	unary  := "!" unary | "(" or ")" | atom | "true" | "false"
//	atom   := path [op operand]
//	path   := ident ["()"] ("." ident ["()"])*
//	operand:= int | "-" int | "null" | "true" | "false" | string | path
//
// A nullary getter suffix "()" canonicalizes away: `s.isClosing()` parses to
// the path "s.isClosing". A bare path is a boolean state predicate.
func ParsePredicate(src string) (Formula, error) {
	toks, err := minij.Lex(src)
	if err != nil {
		return nil, fmt.Errorf("smt: %w", err)
	}
	p := &predParser{toks: toks}
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != minij.TokEOF {
		return nil, fmt.Errorf("smt: %s: trailing input %s", p.cur().Pos, p.cur())
	}
	return f, nil
}

// MustParsePredicate parses src and panics on error. It is a test helper
// for declaring literal predicates in test tables; production code parses
// with ParsePredicate and threads the error to its caller, so a malformed
// predicate degrades the run instead of crashing the process.
func MustParsePredicate(src string) Formula {
	f, err := ParsePredicate(src)
	if err != nil {
		panic(err)
	}
	return f
}

type predParser struct {
	toks []minij.Token
	i    int
}

func (p *predParser) cur() minij.Token  { return p.toks[p.i] }
func (p *predParser) next() minij.Token { t := p.toks[p.i]; p.i++; return t }

func (p *predParser) is(kind minij.TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && t.Text == text
}

func (p *predParser) accept(kind minij.TokenKind, text string) bool {
	if p.is(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *predParser) parseOr() (Formula, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	xs := []Formula{x}
	for p.accept(minij.TokOp, "||") {
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		xs = append(xs, y)
	}
	return NewOr(xs...), nil
}

func (p *predParser) parseAnd() (Formula, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	xs := []Formula{x}
	for p.accept(minij.TokOp, "&&") {
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		xs = append(xs, y)
	}
	return NewAnd(xs...), nil
}

func (p *predParser) parseUnary() (Formula, error) {
	if p.accept(minij.TokOp, "!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NewNot(x), nil
	}
	if p.accept(minij.TokPunct, "(") {
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(minij.TokPunct, ")") {
			return nil, fmt.Errorf("smt: %s: expected \")\"", p.cur().Pos)
		}
		return x, nil
	}
	if p.accept(minij.TokKeyword, "true") {
		return True(), nil
	}
	if p.accept(minij.TokKeyword, "false") {
		return False(), nil
	}
	return p.parseAtom()
}

// cmpOps maps operator tokens to CmpOp.
var cmpOps = map[string]CmpOp{
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *predParser) parseAtom() (Formula, error) {
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	op, isCmp := cmpOps[p.cur().Text]
	if !isCmp || p.cur().Kind != minij.TokOp {
		return NewAtom(BoolAtom(path)), nil
	}
	opPos := p.cur().Pos
	p.i++
	t := p.cur()
	switch {
	case t.Kind == minij.TokInt:
		p.i++
		return NewAtom(CmpCAtom(path, op, t.Int)), nil
	case t.Kind == minij.TokOp && t.Text == "-":
		p.i++
		lit := p.cur()
		if lit.Kind != minij.TokInt {
			return nil, fmt.Errorf("smt: %s: expected integer after \"-\"", lit.Pos)
		}
		p.i++
		return NewAtom(CmpCAtom(path, op, -lit.Int)), nil
	case t.Kind == minij.TokKeyword && t.Text == "null":
		p.i++
		switch op {
		case OpEq:
			return NewAtom(NullAtom(path)), nil
		case OpNe:
			return NewNot(NewAtom(NullAtom(path))), nil
		}
		return nil, fmt.Errorf("smt: %s: null supports only == and !=", opPos)
	case t.Kind == minij.TokKeyword && (t.Text == "true" || t.Text == "false"):
		p.i++
		positive := (t.Text == "true") == (op == OpEq)
		if op != OpEq && op != OpNe {
			return nil, fmt.Errorf("smt: %s: booleans support only == and !=", opPos)
		}
		if positive {
			return NewAtom(BoolAtom(path)), nil
		}
		return NewNot(NewAtom(BoolAtom(path))), nil
	case t.Kind == minij.TokString:
		p.i++
		if op != OpEq && op != OpNe {
			return nil, fmt.Errorf("smt: %s: strings support only == and !=", opPos)
		}
		return NewAtom(StrEqAtom(path, op, t.Text)), nil
	case t.Kind == minij.TokIdent:
		path2, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return NewAtom(CmpVAtom(path, op, path2)), nil
	}
	return nil, fmt.Errorf("smt: %s: expected operand, found %s", t.Pos, t)
}

func (p *predParser) parsePath() (string, error) {
	t := p.cur()
	if t.Kind != minij.TokIdent {
		return "", fmt.Errorf("smt: %s: expected path, found %s", t.Pos, t)
	}
	p.i++
	path := t.Text
	p.acceptCallSuffix()
	for p.accept(minij.TokPunct, ".") {
		seg := p.cur()
		if seg.Kind != minij.TokIdent {
			return "", fmt.Errorf("smt: %s: expected identifier after \".\"", seg.Pos)
		}
		p.i++
		path += "." + seg.Text
		p.acceptCallSuffix()
	}
	return path, nil
}

// acceptCallSuffix consumes a nullary call suffix "()" if present, which
// canonicalizes getter calls to field-style paths.
func (p *predParser) acceptCallSuffix() {
	if p.is(minij.TokPunct, "(") && p.i+1 < len(p.toks) &&
		p.toks[p.i+1].Kind == minij.TokPunct && p.toks[p.i+1].Text == ")" {
		p.i += 2
	}
}
