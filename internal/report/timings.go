package report

import (
	"fmt"
	"time"
)

// Timings is an ordered wall-clock ledger: each Record or Time call
// appends (or accumulates into) a named entry, and Render draws the
// aligned table lisabench prints after an experiment sweep. Entries keep
// first-recorded order, so the table reads in execution order.
type Timings struct {
	names  []string
	totals map[string]time.Duration
}

// NewTimings returns an empty ledger.
func NewTimings() *Timings {
	return &Timings{totals: map[string]time.Duration{}}
}

// Record adds d to the named entry, creating it on first use.
func (t *Timings) Record(name string, d time.Duration) {
	if _, ok := t.totals[name]; !ok {
		t.names = append(t.names, name)
	}
	t.totals[name] += d
}

// Time runs f and records its wall-clock under name.
func (t *Timings) Time(name string, f func()) {
	start := time.Now()
	f()
	t.Record(name, time.Since(start))
}

// Total sums every entry.
func (t *Timings) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.totals {
		sum += d
	}
	return sum
}

// Get returns the accumulated duration for name (zero if absent).
func (t *Timings) Get(name string) time.Duration { return t.totals[name] }

// Names lists the recorded entries in first-recorded order (a copy; safe
// for callers to keep).
func (t *Timings) Names() []string { return append([]string(nil), t.names...) }

// Render draws the ledger as a table with per-entry share of the total.
func (t *Timings) Render(title string) string {
	tb := &Table{Title: title, Headers: []string{"stage", "wall clock", "share"}}
	total := t.Total()
	for _, name := range t.names {
		d := t.totals[name]
		share := "-"
		if total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(d)/float64(total))
		}
		tb.AddRow(name, formatDuration(d), share)
	}
	tb.AddRow("total", formatDuration(total), "")
	return tb.Render()
}

// formatDuration rounds to a readable precision: sub-millisecond values
// keep microseconds, everything else rounds to 10µs.
func formatDuration(d time.Duration) string {
	if d < time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(10 * time.Microsecond).String()
}

// RenderStages draws a map of stage durations (e.g. an engine run's
// StageTimings) in the given order.
func RenderStages(title string, order []string, stages map[string]time.Duration) string {
	t := NewTimings()
	for _, name := range order {
		t.Record(name, stages[name])
	}
	return t.Render(title)
}
