package server

// Crash recovery at the service level: a helper process runs a
// store-backed daemon gate and is killed by an injected crash inside the
// store's writer goroutine (mid-append or pre-sync), leaving whatever the
// kill point left on disk — possibly a torn tail. The parent reopens the
// directory cold and demands the end-to-end invariant the resilience
// design promises: the recovered store serves a gate whose report is
// byte-identical to a store-less local sequential run, with zero
// corrupted records ever served.

import (
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"testing"

	"lisa/internal/ci"
	"lisa/internal/corpus"
	"lisa/internal/faultinject"
	"lisa/internal/store"
)

// TestServerCrashGateHelper is not a test: it is the victim process of
// TestGateByteIdentityAfterCrash. It arms the round's Crash rule, then
// runs one store-backed gate; the injected crash kills the process from
// inside the store writer goroutine partway through persisting the gate's
// cache fills.
func TestServerCrashGateHelper(t *testing.T) {
	if os.Getenv("LISA_SERVER_CRASH") != "1" {
		t.Skip("helper process for TestGateByteIdentityAfterCrash")
	}
	dir := os.Getenv("LISA_SERVER_CRASH_DIR")
	point := os.Getenv("LISA_SERVER_CRASH_POINT")
	skip, _ := strconv.Atoi(os.Getenv("LISA_SERVER_CRASH_SKIP"))

	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("helper store open: %v", err)
	}
	faultinject.Arm(faultinject.NewPlan(11).
		SetAfter(point, faultinject.Crash, skip).
		ScopeStore())
	srv := New(Config{Corpus: corpus.Load(), Store: st})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	cs := corpusCase(t, "zk-ephemeral")
	// The gate's error is irrelevant: the crash may sever the response.
	cl.Gate(GateRequest{Case: cs.ID, Change: cs.Head(), Summary: "crash-twin"})
	st.Flush()
	st.Close()
	// Reaching here means the rule never fired — the parent treats a clean
	// exit as a campaign bug (the skip outran the gate's store writes).
}

// TestGateByteIdentityAfterCrash kills a store-backed daemon at three
// write-path points mid-gate, then verifies the recovered store: zero
// corruptions surfaced, and a fresh daemon over it renders the gate
// byte-identical to a store-less local sequential run. Skipped in -short
// runs (each round spawns a process).
func TestGateByteIdentityAfterCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("crash rounds spawn a process each")
	}
	cs := corpusCase(t, "zk-ephemeral")
	seq, err := ci.GateWith(localTwin(t, cs), ci.Change{
		Summary:   "crash-twin",
		OldSource: cs.Head(),
		NewSource: cs.Head(),
	}, cs.Tests, ci.GateOptions{})
	if err != nil {
		t.Fatalf("store-less baseline gate: %v", err)
	}
	want := seq.Report.Render()

	for _, r := range []struct {
		point string
		skip  int
	}{
		{store.FaultPointWrite, 0},
		{store.FaultPointWrite, 5},
		{store.FaultPointFlush, 0},
	} {
		r := r
		t.Run(r.point+"_skip"+strconv.Itoa(r.skip), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestServerCrashGateHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				"LISA_SERVER_CRASH=1",
				"LISA_SERVER_CRASH_DIR="+dir,
				"LISA_SERVER_CRASH_POINT="+r.point,
				"LISA_SERVER_CRASH_SKIP="+strconv.Itoa(r.skip),
			)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != faultinject.CrashExitCode {
				t.Fatalf("helper did not die at the kill point (err=%v):\n%s", err, out)
			}

			// Cold open runs torn-tail recovery; nothing corrupt may be
			// visible, before or after the gate reads it.
			st, err := store.Open(dir)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer st.Close()
			if s := st.Stats(); s.Corruptions != 0 {
				t.Fatalf("corruptions surfaced on recovery open: %+v", s)
			}
			_, cl, done := newTestServer(t, Config{Store: st})
			defer done()
			resp, err := cl.Gate(GateRequest{Case: cs.ID, Change: cs.Head(), Summary: "crash-twin"})
			if err != nil {
				t.Fatalf("gate over recovered store: %v", err)
			}
			if resp.Pass != seq.Pass {
				t.Errorf("pass=%v over recovered store, store-less local %v", resp.Pass, seq.Pass)
			}
			if resp.Report != want {
				t.Errorf("gate report over recovered store differs from store-less local render:\n--- recovered ---\n%s\n--- local ---\n%s", resp.Report, want)
			}
			if s := st.Stats(); s.Corruptions != 0 {
				t.Fatalf("recovered store served a corrupted record during the gate: %+v", s)
			}
		})
	}
}
