package interp

import (
	"context"
	"errors"
	"fmt"

	"lisa/internal/faultinject"
	"lisa/internal/minij"
)

// ErrStepBudget is returned when execution exceeds the configured statement
// budget (a runaway-loop backstop, not a MiniJ exception).
var ErrStepBudget = errors.New("interp: step budget exhausted")

// ErrStackDepth is returned when the call stack exceeds its depth limit.
var ErrStackDepth = errors.New("interp: call stack too deep")

// Exception is a MiniJ exception in flight. Runtime faults surface as
// exceptions with conventional values: "NullPointerException",
// "ArithmeticException", "TypeError", "IndexOutOfBounds".
type Exception struct {
	Value string
	Pos   minij.Pos
}

// Error implements the error interface.
func (e *Exception) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Value) }

// UncaughtError wraps an exception that escaped the entry method.
type UncaughtError struct {
	Exc *Exception
}

// Error implements the error interface.
func (e *UncaughtError) Error() string {
	return "uncaught exception: " + e.Exc.Error()
}

// Frame is one activation record. Hooks receive the current frame so the
// concolic engine can resolve identifier bindings at branch points.
type Frame struct {
	Method *minij.Method
	This   *Object
	scopes []map[string]Value
}

func (f *Frame) push() { f.scopes = append(f.scopes, map[string]Value{}) }
func (f *Frame) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *Frame) declare(name string, v Value) {
	f.scopes[len(f.scopes)-1][name] = v
}

// Lookup resolves a local or parameter name in the frame, innermost scope
// first.
func (f *Frame) Lookup(name string) (Value, bool) {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if v, ok := f.scopes[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

// assign rebinds an existing local, reporting whether the name was found.
func (f *Frame) assign(name string, v Value) bool {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if _, ok := f.scopes[i][name]; ok {
			f.scopes[i][name] = v
			return true
		}
	}
	return false
}

// IOEvent records one builtin I/O call.
type IOEvent struct {
	Builtin   string
	Detail    string
	Blocking  bool
	LocksHeld int
	Pos       minij.Pos
	// Method is the qualified name of the method executing the builtin.
	Method string
}

// Hooks are optional observation points. Any field may be nil.
type Hooks struct {
	// OnStmt fires before each statement executes.
	OnStmt func(s minij.Stmt, fr *Frame)
	// OnBranch fires after a branch condition evaluates, with the taken
	// direction. It fires for if, while, and for conditions.
	OnBranch func(s minij.Stmt, cond minij.Expr, taken bool, fr *Frame)
	// OnEnter fires when a method is entered, after parameters bind. call
	// is the call expression that created the frame, or nil for public
	// entry points and constructor invocations.
	OnEnter func(m *minij.Method, fr *Frame, call *minij.Call)
	// OnExit fires when a method returns or unwinds.
	OnExit func(m *minij.Method)
	// OnBuiltin fires for each builtin call with the lock-nesting depth at
	// the call site (structural contracts key on blocking+locks).
	OnBuiltin func(ev IOEvent)
}

// Options configure an interpreter.
type Options struct {
	StepBudget int // statements; 0 means DefaultStepBudget
	MaxDepth   int // frames; 0 means DefaultMaxDepth
	Clock      int64
	// Ctx, when non-nil, is polled cooperatively in the statement loop
	// (every ctxPollMask+1 steps); cancellation or deadline expiry aborts
	// execution with the context's error, so a run under a wall-clock
	// budget returns promptly even from runaway MiniJ loops.
	Ctx context.Context
}

// ctxPollMask throttles the cancellation poll: the step loop checks
// Options.Ctx when steps&ctxPollMask == 0, bounding cancellation latency
// to ~1k statements while keeping the common path branch-cheap.
const ctxPollMask = 1<<10 - 1

// Default execution limits.
const (
	DefaultStepBudget = 2_000_000
	DefaultMaxDepth   = 2_000
)

// Interp executes MiniJ programs. The program must have been resolved with
// minij.Check (call kinds are consulted during dispatch).
type Interp struct {
	Prog  *minij.Program
	Hooks Hooks

	// Clock is the logical time returned by now(); sleep(n) advances it.
	Clock int64
	// Log collects log() output.
	Log []string
	// IOLog collects every I/O builtin invocation.
	IOLog []IOEvent
	// Files backs ioWrite/ioRead.
	Files map[string]string

	steps     int
	budget    int
	ctx       context.Context
	depth     int
	curMethod []*minij.Method
	maxDepth  int
	locksHeld int
	lockDepth map[Value]int
}

// New returns an interpreter for prog with default options.
func New(prog *minij.Program) *Interp {
	return NewWithOptions(prog, Options{})
}

// NewWithOptions returns an interpreter with explicit limits.
func NewWithOptions(prog *minij.Program, opts Options) *Interp {
	budget := opts.StepBudget
	if budget <= 0 {
		budget = DefaultStepBudget
	}
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	return &Interp{
		Prog:      prog,
		Clock:     opts.Clock,
		Files:     map[string]string{},
		budget:    budget,
		ctx:       opts.Ctx,
		maxDepth:  maxDepth,
		lockDepth: map[Value]int{},
	}
}

// Steps reports how many statements have executed so far.
func (in *Interp) Steps() int { return in.steps }

// LocksHeld reports the current synchronized-block nesting depth.
func (in *Interp) LocksHeld() int { return in.locksHeld }

// CallStatic invokes a static method by qualified name with the given
// arguments. An exception escaping the method is returned as *UncaughtError.
func (in *Interp) CallStatic(class, method string, args ...Value) (Value, error) {
	m := in.Prog.Method(class, method)
	if m == nil {
		return nil, fmt.Errorf("interp: no method %s.%s", class, method)
	}
	if !m.Static {
		return nil, fmt.Errorf("interp: %s.%s is not static", class, method)
	}
	return in.invoke(m, nil, args)
}

// CallInstance invokes an instance method on obj.
func (in *Interp) CallInstance(obj *Object, method string, args ...Value) (Value, error) {
	m := obj.Class.Method(method)
	if m == nil {
		return nil, fmt.Errorf("interp: class %s has no method %s", obj.Class.Name, method)
	}
	return in.invoke(m, obj, args)
}

// invoke adapts the internal calling convention for public entry points.
func (in *Interp) invoke(m *minij.Method, this *Object, args []Value) (Value, error) {
	v, exc, err := in.callMethod(m, this, args, m.DeclPos, nil)
	if err != nil {
		return nil, err
	}
	if exc != nil {
		return nil, &UncaughtError{Exc: exc}
	}
	return v, nil
}

// Instantiate creates an object of the named class, running its init method
// when present.
func (in *Interp) Instantiate(class string, args ...Value) (*Object, error) {
	c := in.Prog.Class(class)
	if c == nil {
		return nil, fmt.Errorf("interp: unknown class %s", class)
	}
	obj := in.newObject(c)
	if init := c.Method("init"); init != nil {
		if _, exc, err := in.callMethod(init, obj, args, init.DeclPos, nil); err != nil {
			return nil, err
		} else if exc != nil {
			return nil, &UncaughtError{Exc: exc}
		}
	}
	return obj, nil
}

func (in *Interp) newObject(c *minij.Class) *Object {
	obj := &Object{Class: c, Fields: make(map[string]Value, len(c.Fields))}
	for _, f := range c.Fields {
		obj.Fields[f.Name] = ZeroOf(f.Type)
	}
	return obj
}

type ctrlKind int

const (
	ctrlNormal ctrlKind = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
	ctrlThrow
)

type outcome struct {
	kind ctrlKind
	ret  Value
	exc  *Exception
}

var okOutcome = outcome{}

func throw(value string, pos minij.Pos) outcome {
	return outcome{kind: ctrlThrow, exc: &Exception{Value: value, Pos: pos}}
}

// callMethod binds arguments and executes the body. call is the invoking
// call expression, or nil for entry points and constructors.
func (in *Interp) callMethod(m *minij.Method, this *Object, args []Value, pos minij.Pos, call *minij.Call) (Value, *Exception, error) {
	if faultinject.Armed() {
		switch k, ok := faultinject.At("interp.call:" + m.FullName()); {
		case ok && k == faultinject.Budget:
			return nil, nil, ErrStepBudget
		case ok && k == faultinject.Panic:
			panic("faultinject: interp.call " + m.FullName())
		}
	}
	if in.depth >= in.maxDepth {
		return nil, nil, ErrStackDepth
	}
	if len(args) != len(m.Params) {
		return nil, nil, fmt.Errorf("interp: %s: %d args, want %d", m.FullName(), len(args), len(m.Params))
	}
	fr := &Frame{Method: m, This: this}
	fr.push()
	for i, p := range m.Params {
		fr.declare(p.Name, args[i])
	}
	in.depth++
	in.curMethod = append(in.curMethod, m)
	if in.Hooks.OnEnter != nil {
		in.Hooks.OnEnter(m, fr, call)
	}
	out, err := in.execBlock(m.Body, fr)
	if in.Hooks.OnExit != nil {
		in.Hooks.OnExit(m)
	}
	in.curMethod = in.curMethod[:len(in.curMethod)-1]
	in.depth--
	if err != nil {
		return nil, nil, err
	}
	switch out.kind {
	case ctrlThrow:
		return nil, out.exc, nil
	case ctrlReturn:
		if out.ret == nil {
			return Null{}, nil, nil
		}
		return out.ret, nil, nil
	default:
		if m.Ret.Kind == minij.TypeVoid {
			return Null{}, nil, nil
		}
		// Falling off the end of a non-void method yields the zero value;
		// the resolver is lenient about exhaustiveness on purpose (the
		// corpus mirrors real-world partial methods).
		return ZeroOf(m.Ret), nil, nil
	}
}

func (in *Interp) execBlock(b *minij.Block, fr *Frame) (outcome, error) {
	fr.push()
	defer fr.pop()
	for _, s := range b.Stmts {
		out, err := in.exec(s, fr)
		if err != nil || out.kind != ctrlNormal {
			return out, err
		}
	}
	return okOutcome, nil
}

func (in *Interp) exec(s minij.Stmt, fr *Frame) (outcome, error) {
	in.steps++
	if in.steps > in.budget {
		return okOutcome, ErrStepBudget
	}
	if in.ctx != nil && in.steps&ctxPollMask == 0 {
		select {
		case <-in.ctx.Done():
			return okOutcome, in.ctx.Err()
		default:
		}
	}
	if in.Hooks.OnStmt != nil {
		in.Hooks.OnStmt(s, fr)
	}
	switch n := s.(type) {
	case *minij.Block:
		return in.execBlock(n, fr)
	case *minij.VarDecl:
		v := ZeroOf(n.Type)
		if n.Init != nil {
			var exc *Exception
			var err error
			v, exc, err = in.eval(n.Init, fr)
			if err != nil {
				return okOutcome, err
			}
			if exc != nil {
				return outcome{kind: ctrlThrow, exc: exc}, nil
			}
		}
		fr.declare(n.Name, v)
		return okOutcome, nil
	case *minij.Assign:
		return in.execAssign(n, fr)
	case *minij.If:
		taken, out, err := in.evalBranch(n, n.Cond, fr)
		if err != nil || out.kind != ctrlNormal {
			return out, err
		}
		if taken {
			return in.execBlock(n.Then, fr)
		}
		if n.Else != nil {
			return in.exec(n.Else, fr)
		}
		return okOutcome, nil
	case *minij.While:
		for {
			taken, out, err := in.evalBranch(n, n.Cond, fr)
			if err != nil || out.kind != ctrlNormal {
				return out, err
			}
			if !taken {
				return okOutcome, nil
			}
			out, err = in.execBlock(n.Body, fr)
			if err != nil {
				return out, err
			}
			switch out.kind {
			case ctrlBreak:
				return okOutcome, nil
			case ctrlNormal, ctrlContinue:
			default:
				return out, nil
			}
		}
	case *minij.For:
		fr.push()
		defer fr.pop()
		if n.Init != nil {
			out, err := in.exec(n.Init, fr)
			if err != nil || out.kind != ctrlNormal {
				return out, err
			}
		}
		for {
			if n.Cond != nil {
				taken, out, err := in.evalBranch(n, n.Cond, fr)
				if err != nil || out.kind != ctrlNormal {
					return out, err
				}
				if !taken {
					return okOutcome, nil
				}
			}
			out, err := in.execBlock(n.Body, fr)
			if err != nil {
				return out, err
			}
			switch out.kind {
			case ctrlBreak:
				return okOutcome, nil
			case ctrlNormal, ctrlContinue:
			default:
				return out, nil
			}
			if n.Post != nil {
				out, err := in.exec(n.Post, fr)
				if err != nil || out.kind != ctrlNormal {
					return out, err
				}
			}
		}
	case *minij.ForEach:
		v, exc, err := in.eval(n.Iter, fr)
		if err != nil {
			return okOutcome, err
		}
		if exc != nil {
			return outcome{kind: ctrlThrow, exc: exc}, nil
		}
		lst, ok := v.(*List)
		if !ok {
			if IsNull(v) {
				return throw("NullPointerException", n.Iter.Pos()), nil
			}
			return throw("TypeError", n.Iter.Pos()), nil
		}
		snapshot := make([]Value, len(lst.Elems))
		copy(snapshot, lst.Elems)
		for _, el := range snapshot {
			fr.push()
			fr.declare(n.Var, el)
			out, err := in.execBlock(n.Body, fr)
			fr.pop()
			if err != nil {
				return out, err
			}
			switch out.kind {
			case ctrlBreak:
				return okOutcome, nil
			case ctrlNormal, ctrlContinue:
			default:
				return out, nil
			}
		}
		return okOutcome, nil
	case *minij.Return:
		if n.Value == nil {
			return outcome{kind: ctrlReturn}, nil
		}
		v, exc, err := in.eval(n.Value, fr)
		if err != nil {
			return okOutcome, err
		}
		if exc != nil {
			return outcome{kind: ctrlThrow, exc: exc}, nil
		}
		return outcome{kind: ctrlReturn, ret: v}, nil
	case *minij.Break:
		return outcome{kind: ctrlBreak}, nil
	case *minij.Continue:
		return outcome{kind: ctrlContinue}, nil
	case *minij.Throw:
		v, exc, err := in.eval(n.Value, fr)
		if err != nil {
			return okOutcome, err
		}
		if exc != nil {
			return outcome{kind: ctrlThrow, exc: exc}, nil
		}
		sv, ok := v.(Str)
		if !ok {
			return throw("TypeError", n.Pos()), nil
		}
		return throw(string(sv), n.Pos()), nil
	case *minij.Try:
		out, err := in.execBlock(n.Body, fr)
		if err != nil {
			return out, err
		}
		if out.kind != ctrlThrow {
			return out, nil
		}
		fr.push()
		fr.declare(n.CatchVar, Str(out.exc.Value))
		catchOut, err := in.execBlock(n.Catch, fr)
		fr.pop()
		return catchOut, err
	case *minij.Sync:
		lock, exc, err := in.eval(n.Lock, fr)
		if err != nil {
			return okOutcome, err
		}
		if exc != nil {
			return outcome{kind: ctrlThrow, exc: exc}, nil
		}
		if IsNull(lock) {
			return throw("NullPointerException", n.Lock.Pos()), nil
		}
		in.locksHeld++
		in.lockDepth[lock]++
		out, err := in.execBlock(n.Body, fr)
		in.lockDepth[lock]--
		if in.lockDepth[lock] == 0 {
			delete(in.lockDepth, lock)
		}
		in.locksHeld--
		return out, err
	case *minij.ExprStmt:
		_, exc, err := in.eval(n.E, fr)
		if err != nil {
			return okOutcome, err
		}
		if exc != nil {
			return outcome{kind: ctrlThrow, exc: exc}, nil
		}
		return okOutcome, nil
	}
	return okOutcome, fmt.Errorf("interp: unhandled statement %T", s)
}

// evalBranch evaluates a branch condition and reports the taken direction,
// firing the OnBranch hook.
func (in *Interp) evalBranch(s minij.Stmt, cond minij.Expr, fr *Frame) (bool, outcome, error) {
	v, exc, err := in.eval(cond, fr)
	if err != nil {
		return false, okOutcome, err
	}
	if exc != nil {
		return false, outcome{kind: ctrlThrow, exc: exc}, nil
	}
	b, ok := Truthy(v)
	if !ok {
		return false, throw("TypeError", cond.Pos()), nil
	}
	if in.Hooks.OnBranch != nil {
		in.Hooks.OnBranch(s, cond, b, fr)
	}
	return b, okOutcome, nil
}

func (in *Interp) execAssign(n *minij.Assign, fr *Frame) (outcome, error) {
	v, exc, err := in.eval(n.Value, fr)
	if err != nil {
		return okOutcome, err
	}
	if exc != nil {
		return outcome{kind: ctrlThrow, exc: exc}, nil
	}
	switch t := n.Target.(type) {
	case *minij.Ident:
		if fr.assign(t.Name, v) {
			return okOutcome, nil
		}
		if fr.This != nil {
			if _, ok := fr.This.Fields[t.Name]; ok {
				fr.This.Fields[t.Name] = v
				return okOutcome, nil
			}
		}
		return okOutcome, fmt.Errorf("interp: %s: assign to undefined %q", t.Pos(), t.Name)
	case *minij.FieldAccess:
		recv, exc, err := in.eval(t.Recv, fr)
		if err != nil {
			return okOutcome, err
		}
		if exc != nil {
			return outcome{kind: ctrlThrow, exc: exc}, nil
		}
		obj, ok := recv.(*Object)
		if !ok {
			if IsNull(recv) {
				return throw("NullPointerException", t.Pos()), nil
			}
			return throw("TypeError", t.Pos()), nil
		}
		if _, ok := obj.Fields[t.Name]; !ok {
			return throw("TypeError", t.Pos()), nil
		}
		obj.Fields[t.Name] = v
		return okOutcome, nil
	}
	return okOutcome, fmt.Errorf("interp: invalid assignment target %T", n.Target)
}
